"""Asyncio NDJSON inference server: the front door.

Wire protocol — one JSON object per ``\\n``-terminated line, one JSON
object back per request, stdlib only:

* ``{"op": "infer", "model": "name[@version]", "input": [...], "id": x}``
  (``op`` may be omitted; ``infer`` is the default) →
  ``{"id": x, "ok": true, "model": "name@vN", "output": [...],
  "latency_ms": ..., "served_by": "batch" | "eager"}``. Rejections are
  explicit and immediate: ``{"id": x, "ok": false, "error": "overloaded",
  "reason": "queue-full" | "slo"}``.
* ``{"op": "stats"}`` → the full :class:`~.metrics.ServerMetrics`
  snapshot plus per-model registry state (the ``/stats`` endpoint).
* ``{"op": "swap", "name": ..., "version": ..., "checkpoint": path}`` →
  hot-swap through :meth:`~.registry.ModelRegistry.deploy`; traffic keeps
  flowing while the replacement compiles and validates off-loop.
* ``{"op": "models"}``, ``{"op": "ping"}`` — introspection.

Each connection is served sequentially (one in-flight request per
connection; open more connections for concurrency — the closed-loop load
model). Admission control runs *before* any compute or queueing, so an
overloaded server answers rejections in event-loop time, not model time.

Request lifecycle (PR 7): an ``infer`` request may carry ``deadline_ms``
(its remaining latency budget). A request that cannot meet its deadline
is shed at admission (``overloaded``/``deadline``); one that expires
while queued is evicted before its batch runs and answered with
``error: "expired"`` — either way no engine time is spent on an answer
nobody will read. ``aclose(drain=True)`` (and SIGTERM under ``repro
serve``) drains gracefully: the listening socket closes, new requests
get an explicit ``error: "draining"``, and every already-accepted
request completes before the loop shuts down. Requests carrying an
idempotency key (``rid``) are answered from a bounded replay cache on
retry, so a reconnecting client never double-counts work.

Fault containment mirrors the PR 5 supervisor: a request whose batched
ticket fails is retried on the current engine (covers the swap race,
where the old runner closed under it) and then falls back to a serial
eager forward; repeated faults mark the line degraded (all-eager) rather
than dropping accepted requests. See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..clock import SYSTEM_CLOCK, Clock
from ..infer.batcher import DeadlineExpired
from .metrics import ServerMetrics
from .registry import ModelRegistry, NoSuchModelError, SwapValidationError

__all__ = ["ServeConfig", "InferenceServer", "ServerThread"]


@dataclass(frozen=True)
class ServeConfig:
    """Socket + per-request limits of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 → ephemeral, see server.port
    request_timeout_s: float = 30.0     # ticket wait before cancel
    max_line_bytes: int = 8 * 2 ** 20   # readline limit per request
    drain_grace_s: float = 30.0         # in-flight budget for drain=True
    replay_cache_size: int = 1024       # idempotent-rid responses kept


class InferenceServer:
    """Routes NDJSON requests into a :class:`~.registry.ModelRegistry`."""

    def __init__(self, registry: ModelRegistry,
                 config: ServeConfig | None = None, *,
                 metrics: ServerMetrics | None = None,
                 clock: Clock = SYSTEM_CLOCK,
                 router=None):
        self.registry = registry
        self.config = config or ServeConfig()
        self.metrics = metrics or ServerMetrics()
        self.clock = clock
        # Replicated tier (optional): a ReplicaRouter dispatches accepted
        # requests across worker processes; the local registry stays as
        # the validated fallback path (and the degrade target).
        self.router = router
        if router is not None and router.metrics is None:
            router.metrics = self.metrics
        if getattr(registry, "metrics", None) is None:
            registry.metrics = self.metrics
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._closed = False
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._replay: OrderedDict[str, dict] = OrderedDict()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._idle = asyncio.Event()
        self._idle.set()
        if self.router is not None:
            # Replicas must be connected and deployed before the socket
            # opens: the frontend never accepts traffic it cannot serve.
            await self.router.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port,
            limit=self.config.max_line_bytes)
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self, drain: bool = False,
                     grace: float | None = None) -> None:
        """Stop the server; with ``drain=True``, finish accepted work first.

        Drain order: the listening socket closes (no new connections),
        new requests on live connections are answered ``draining``, and
        the loop waits — up to ``grace`` seconds (default: the config's
        ``drain_grace_s``) — until every already-accepted request has
        been answered. Only then are the connections torn down, so a
        drain drops zero accepted requests.
        """
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            self._draining = True
            if self._inflight > 0 and self._idle is not None:
                grace = self.config.drain_grace_s if grace is None else grace
                try:
                    await asyncio.wait_for(self._idle.wait(), grace)
                except asyncio.TimeoutError:
                    pass        # grace spent; the rest is cancelled below
        for writer in list(self._writers):
            writer.close()
        if self.router is not None:
            # After the drain wait: accepted requests have been answered
            # (replicated or locally), so tearing the replicas down now
            # drops nothing.
            await self.router.aclose()

    def run_forever(self) -> None:
        """Blocking entry point used by ``repro serve``.

        SIGTERM and SIGINT trigger a graceful drain (see :meth:`aclose`)
        instead of killing in-flight requests.
        """
        async def main():
            await self.start()
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except (NotImplementedError, ValueError, RuntimeError):
                    pass        # non-main thread / exotic platform
            print(f"repro.serve listening on "
                  f"{self.config.host}:{self.port}")
            await stop.wait()
            print(f"repro.serve draining ({self._inflight} in flight, "
                  f"grace {self.config.drain_grace_s:.0f}s)")
            await self.aclose(drain=True)
            print("repro.serve drained; bye")
        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass

    # -- connection loop ------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    # readuntil, not readline: on an over-limit line
                    # readline consumes an unpredictable amount of the
                    # buffer before raising, while readuntil leaves it
                    # intact — which is what lets _discard_oversized
                    # resynchronise on the newline.
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    if not exc.partial:
                        break               # clean EOF
                    line = exc.partial      # final request, no newline
                except asyncio.LimitOverrunError:
                    # The line overran max_line_bytes. Consume the rest
                    # of it (the client may still be writing; reading is
                    # what unblocks it), answer explicitly, and keep the
                    # connection alive — an oversized request is the
                    # client's bug, not a reason to hang up mid-stream.
                    self.metrics.incr("received")
                    recovered = await self._discard_oversized(reader)
                    await self._send(writer, {
                        "ok": False, "error": "bad-request",
                        "reason": "line-too-long",
                        "message": (f"request line exceeds "
                                    f"{self.config.max_line_bytes} bytes")})
                    if not recovered:
                        break
                    continue
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response = await self._dispatch(line)
                await self._send(writer, response)
                if response.get("bye"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler mid-read. Absorb it
            # and return normally: a task that finishes *cancelled* makes
            # the stream protocol's completion callback raise when it
            # polls task.exception() during loop teardown.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _discard_oversized(self, reader: asyncio.StreamReader) -> bool:
        """Eat the remainder of an over-limit line; True once its newline
        is reached (the connection can then resync on the next request).

        ``readuntil`` raises ``LimitOverrunError`` without consuming the
        buffer, in two flavours: separator *found* past the limit
        (``consumed`` = its index — dropping that many bytes puts the
        newline next) and separator *not yet seen* (``consumed`` = the
        searched length — drop it and keep reading). Either way the
        first ``consumed`` bytes are guaranteed part of the bad line.
        """
        while True:
            try:
                await reader.readuntil(b"\n")
                return True
            except asyncio.LimitOverrunError as exc:
                try:
                    await reader.readexactly(exc.consumed)
                    if await reader.readexactly(1) == b"\n":
                        return True
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return False
            except (asyncio.IncompleteReadError, ConnectionResetError,
                    ValueError):
                return False

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch(self, raw: bytes) -> dict:
        self.metrics.incr("received")
        try:
            msg = json.loads(raw)
            if not isinstance(msg, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return {"ok": False, "error": "bad-request", "message": str(exc)}
        op = msg.get("op", "infer")
        rid = msg.get("id")
        try:
            if op == "infer":
                return await self._infer(msg)
            if op == "stats":
                payload = self.stats()
                if self.router is not None:
                    payload["replicas"] = await self.router.fleet_snapshot()
                return {"id": rid, "ok": True, "stats": payload}
            if op == "models":
                return {"id": rid, "ok": True,
                        "models": self.registry.models()}
            if op == "ping":
                return {"id": rid, "ok": True, "pong": True}
            if op == "swap":
                return await self._swap(msg)
            return {"id": rid, "ok": False, "error": "unknown-op",
                    "message": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            self.metrics.incr("errors")
            return {"id": rid, "ok": False, "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}"}

    # -- ops ------------------------------------------------------------

    def stats(self) -> dict:
        lifecycle = {"draining": self._draining, "inflight": self._inflight}
        if self.router is not None:
            lifecycle["replicas_degraded"] = self.router.degraded
            lifecycle["stop_reason"] = self.router.stop_reason
        return self.metrics.snapshot(extra={
            "models": self.registry.models(),
            "lifecycle": lifecycle})

    async def _swap(self, msg: dict) -> dict:
        rid = msg.get("id")
        if self._draining:
            return {"id": rid, "ok": False, "error": "draining",
                    "message": "server is draining; no new deployments"}
        name, version = msg.get("name"), msg.get("version")
        checkpoint = msg.get("checkpoint")
        if not name or not version or not checkpoint:
            return {"id": rid, "ok": False, "error": "bad-request",
                    "message": "swap needs name, version, checkpoint"}
        rolling = None
        if self.router is not None and self.router.usable:
            # Rolling deploy: one replica at a time through its own
            # compile+probe-validate gate. A rejection aborts with every
            # replica still on the old version — the local registry is
            # then never touched, so frontend and fleet stay consistent.
            rolling = await self.router.rolling_deploy(
                name, version, checkpoint=checkpoint)
            if not rolling.get("ok"):
                return {"id": rid, "ok": False, "error": "swap-rejected",
                        "message": rolling.get("message", ""),
                        "rolling": rolling}
        try:
            # Compile + validate off-loop so traffic keeps flowing.
            report = await asyncio.to_thread(
                self.registry.deploy, name, version, checkpoint=checkpoint)
        except SwapValidationError as exc:
            return {"id": rid, "ok": False, "error": "swap-rejected",
                    "message": str(exc), "rolling": rolling}
        self.metrics.incr("swaps")
        response = {"id": rid, "ok": True, "swap": report.as_dict()}
        if rolling is not None:
            response["rolling"] = rolling
        return response

    async def _infer(self, msg: dict) -> dict:
        rid = msg.get("id")
        if self._draining:
            self.metrics.record_rejection("draining")
            return {"id": rid, "ok": False, "error": "draining",
                    "message": "server is draining; no new requests"}
        idem = msg.get("rid")
        if idem is not None:
            cached = self._replay.get(idem)
            if cached is not None:
                # A retried idempotent request: answer from the cache so
                # the work (and every metric) is counted exactly once.
                self.metrics.incr("replayed")
                return {**cached, "id": rid, "replayed": True}
        ref = msg.get("model")
        if not ref or "input" not in msg:
            return {"id": rid, "ok": False, "error": "bad-request",
                    "message": "infer needs model and input"}
        deadline_ms = msg.get("deadline_ms")
        if deadline_ms is not None:
            if isinstance(deadline_ms, bool) \
                    or not isinstance(deadline_ms, (int, float)) \
                    or not deadline_ms > 0:
                return {"id": rid, "ok": False, "error": "bad-request",
                        "message": "deadline_ms must be a positive number"}
            deadline_ms = float(deadline_ms)
        try:
            line, version = self.registry.resolve(ref)
        except NoSuchModelError as exc:
            return {"id": rid, "ok": False, "error": "no-such-model",
                    "message": str(exc.args[0])}
        admitted, reason = line.admission.try_admit(remaining_ms=deadline_ms)
        if not admitted:
            # The load-shedding fast path: no parse of the input payload
            # beyond this point, no queueing, no compute.
            self.metrics.record_rejection(reason)
            return {"id": rid, "ok": False, "error": "overloaded",
                    "reason": reason}
        start = self.clock.monotonic()
        deadline = None if deadline_ms is None else start + deadline_ms / 1e3
        self._inflight += 1
        if self._idle is not None:
            self._idle.clear()
        try:
            sample = np.asarray(msg["input"], dtype=np.float32)
            routed = None
            if self.router is not None and self.router.usable:
                routed = await self._route_replicated(ref, msg["input"],
                                                      deadline)
            if routed is not None:
                output_list, served_by, active_ref = routed
            else:
                output, served_by, active = await self._run(line, version,
                                                            sample, deadline)
                output_list, active_ref = output.tolist(), active.ref
            latency_ms = (self.clock.monotonic() - start) * 1e3
            self.metrics.record_completion(active_ref, latency_ms)
            response = {"id": rid, "ok": True, "model": active_ref,
                        "output": output_list, "served_by": served_by,
                        "latency_ms": round(latency_ms, 3)}
            if idem is not None:
                self._remember(idem, response)
            return response
        except DeadlineExpired as exc:
            self.metrics.incr("expired")
            return {"id": rid, "ok": False, "error": "expired",
                    "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 - answer, don't drop
            self.metrics.incr("errors")
            kind = ("bad-request" if isinstance(exc, ValueError)
                    else "timeout" if isinstance(exc, TimeoutError)
                    else "internal")
            return {"id": rid, "ok": False, "error": kind,
                    "message": f"{type(exc).__name__}: {exc}"}
        finally:
            line.admission.on_complete(
                (self.clock.monotonic() - start) * 1e3)
            self._inflight -= 1
            if self._inflight == 0 and self._idle is not None:
                self._idle.set()

    async def _route_replicated(self, ref: str, raw_input, deadline):
        """Dispatch one request to the replica tier.

        Returns ``(output_list, served_by, model_ref)``, or ``None`` when
        the request should be served on the local in-process path instead
        (no routable replica, re-dispatch budget spent, replica-side
        engine fault, or the tier just degraded). The replica's output
        list is passed through verbatim — no numpy round-trip — so the
        bytes the replica computed are the bytes the client decodes.
        """
        from .router import ReplicasUnavailable
        try:
            reply = await self.router.dispatch_infer(ref, raw_input,
                                                     deadline)
        except ReplicasUnavailable:
            self.metrics.incr("replica_fallbacks")
            return None
        if reply.get("ok"):
            served_by = f"replica:{reply.get('replica', '?')}"
            return reply["output"], served_by, reply.get("model", ref)
        error = reply.get("error")
        if error == "expired":
            raise DeadlineExpired(
                reply.get("message", "deadline expired on replica"))
        if error == "bad-request":
            raise ValueError(reply.get("message", "bad request"))
        # replica-fault / no-such-model skew: the local path still owns a
        # validated copy of every line — answer there, never drop.
        self.metrics.incr("replica_fallbacks")
        return None

    def _remember(self, idem: str, response: dict) -> None:
        """Cache one successful response under its idempotency key."""
        self._replay[idem] = response
        while len(self._replay) > self.config.replay_cache_size:
            self._replay.popitem(last=False)

    async def _run(self, line, version, sample, deadline=None):
        """Batched path with supervisor-style containment.

        Returns ``(output_row, served_by, version_served)``. Raises only
        when the request itself cannot be served — a client error from
        the eager path, a timeout, or an expired deadline; engine-side
        faults degrade, they do not drop.
        """
        if line.degraded:
            if deadline is not None and self.clock.monotonic() >= deadline:
                raise DeadlineExpired("request deadline passed before the "
                                      "eager path could run")
            out = await asyncio.to_thread(self.registry.eager_infer,
                                          line, version, sample)
            return out, "eager", version

        failure: BaseException | None = None
        for attempt in range(2):
            try:
                ticket = version.runner.submit(sample, deadline=deadline)
            except RuntimeError:
                # Runner closed under us (hot-swap race): re-resolve and
                # retry on whatever is active now.
                line, version = self.registry.resolve(version.name)
                continue
            outcome = await self._await_ticket(ticket, deadline)
            if outcome is _EXPIRED:
                raise DeadlineExpired("request deadline passed while "
                                      "waiting for its batch")
            if outcome is _TIMED_OUT:
                self.metrics.incr("cancelled")
                raise TimeoutError(
                    f"inference exceeded "
                    f"{self.config.request_timeout_s:.1f}s budget")
            value, failure = outcome
            if failure is None:
                return value, "batch", version
            if isinstance(failure, DeadlineExpired):
                # Evicted from the queue before its batch ran: final.
                raise failure
            if isinstance(failure, RuntimeError) and attempt == 0:
                # "BatchRunner is closed" surfaced through the ticket.
                line, version = self.registry.resolve(version.name)
                continue
            break

        # Batched path is faulty — serial eager fallback, then maybe
        # degrade the line. A ValueError here means the *request* was bad
        # (shape mismatch); that propagates to the client and is not a
        # serving fault.
        try:
            out = await asyncio.to_thread(self.registry.eager_infer,
                                          line, version, sample)
        except ValueError:
            raise
        except Exception:
            if failure is not None:
                raise failure
            raise
        self.metrics.incr("fallbacks")
        self.registry.note_fallback(line, version)
        return out, "eager", version

    async def _await_ticket(self, ticket, deadline=None):
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def resolved(t):
            def finish():
                if not future.done():
                    future.set_result((t._value, t._error))
            loop.call_soon_threadsafe(finish)

        ticket.add_done_callback(resolved)
        timeout = self.config.request_timeout_s
        deadline_bound = False
        if deadline is not None:
            remaining = max(deadline - self.clock.monotonic(), 0.0)
            if remaining < timeout:
                timeout, deadline_bound = remaining, True
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            ticket.cancel()
            return _EXPIRED if deadline_bound else _TIMED_OUT


_TIMED_OUT = object()
_EXPIRED = object()


class ServerThread:
    """Run an :class:`InferenceServer` on a background event loop.

    Tests, drills, and the load generator use this to host a real socket
    server inside the current process::

        with ServerThread(registry, ServeConfig()) as srv:
            client = ServeClient("127.0.0.1", srv.port)
    """

    def __init__(self, registry: ModelRegistry,
                 config: ServeConfig | None = None, **server_kwargs):
        self.server = InferenceServer(registry, config, **server_kwargs)
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-serve")

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.server.port is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surface to starter
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.aclose())
            # Connection handlers parked on readline() survive loop.stop();
            # cancel and drain them so the loop closes without orphans.
            tasks = asyncio.all_tasks(self._loop)
            for task in tasks:
                task.cancel()
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            self._loop.close()

    def drain(self, grace: float | None = None, timeout: float = 60.0) -> None:
        """Gracefully drain the hosted server from the calling thread.

        Blocks until every accepted request has been answered (or
        ``grace`` seconds passed); the event loop keeps running so the
        draining responses still flow — call :meth:`stop` afterwards.
        """
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.aclose(drain=True, grace=grace), self._loop)
        future.result(timeout)

    def stop(self) -> None:
        if self._loop is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
