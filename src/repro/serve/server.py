"""Asyncio NDJSON inference server: the front door.

Wire protocol — one JSON object per ``\\n``-terminated line, one JSON
object back per request, stdlib only:

* ``{"op": "infer", "model": "name[@version]", "input": [...], "id": x}``
  (``op`` may be omitted; ``infer`` is the default) →
  ``{"id": x, "ok": true, "model": "name@vN", "output": [...],
  "latency_ms": ..., "served_by": "batch" | "eager"}``. Rejections are
  explicit and immediate: ``{"id": x, "ok": false, "error": "overloaded",
  "reason": "queue-full" | "slo"}``.
* ``{"op": "stats"}`` → the full :class:`~.metrics.ServerMetrics`
  snapshot plus per-model registry state (the ``/stats`` endpoint).
* ``{"op": "swap", "name": ..., "version": ..., "checkpoint": path}`` →
  hot-swap through :meth:`~.registry.ModelRegistry.deploy`; traffic keeps
  flowing while the replacement compiles and validates off-loop.
* ``{"op": "models"}``, ``{"op": "ping"}`` — introspection.

Each connection is served sequentially (one in-flight request per
connection; open more connections for concurrency — the closed-loop load
model). Admission control runs *before* any compute or queueing, so an
overloaded server answers rejections in event-loop time, not model time.

Fault containment mirrors the PR 5 supervisor: a request whose batched
ticket fails is retried on the current engine (covers the swap race,
where the old runner closed under it) and then falls back to a serial
eager forward; repeated faults mark the line degraded (all-eager) rather
than dropping accepted requests. See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass

import numpy as np

from ..clock import SYSTEM_CLOCK, Clock
from .metrics import ServerMetrics
from .registry import ModelRegistry, NoSuchModelError, SwapValidationError

__all__ = ["ServeConfig", "InferenceServer", "ServerThread"]


@dataclass(frozen=True)
class ServeConfig:
    """Socket + per-request limits of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 → ephemeral, see server.port
    request_timeout_s: float = 30.0     # ticket wait before cancel
    max_line_bytes: int = 8 * 2 ** 20   # readline limit per request


class InferenceServer:
    """Routes NDJSON requests into a :class:`~.registry.ModelRegistry`."""

    def __init__(self, registry: ModelRegistry,
                 config: ServeConfig | None = None, *,
                 metrics: ServerMetrics | None = None,
                 clock: Clock = SYSTEM_CLOCK):
        self.registry = registry
        self.config = config or ServeConfig()
        self.metrics = metrics or ServerMetrics()
        self.clock = clock
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port,
            limit=self.config.max_line_bytes)
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()

    def run_forever(self) -> None:
        """Blocking entry point used by ``repro serve``."""
        async def main():
            await self.start()
            print(f"repro.serve listening on "
                  f"{self.config.host}:{self.port}")
            async with self._server:
                await self._server.serve_forever()
        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass

    # -- connection loop ------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {"ok": False,
                                              "error": "line-too-long"})
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response = await self._dispatch(line)
                await self._send(writer, response)
                if response.get("bye"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler mid-read. Absorb it
            # and return normally: a task that finishes *cancelled* makes
            # the stream protocol's completion callback raise when it
            # polls task.exception() during loop teardown.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch(self, raw: bytes) -> dict:
        self.metrics.incr("received")
        try:
            msg = json.loads(raw)
            if not isinstance(msg, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return {"ok": False, "error": "bad-request", "message": str(exc)}
        op = msg.get("op", "infer")
        rid = msg.get("id")
        try:
            if op == "infer":
                return await self._infer(msg)
            if op == "stats":
                return {"id": rid, "ok": True, "stats": self.stats()}
            if op == "models":
                return {"id": rid, "ok": True,
                        "models": self.registry.models()}
            if op == "ping":
                return {"id": rid, "ok": True, "pong": True}
            if op == "swap":
                return await self._swap(msg)
            return {"id": rid, "ok": False, "error": "unknown-op",
                    "message": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            self.metrics.incr("errors")
            return {"id": rid, "ok": False, "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}"}

    # -- ops ------------------------------------------------------------

    def stats(self) -> dict:
        return self.metrics.snapshot(extra={"models": self.registry.models()})

    async def _swap(self, msg: dict) -> dict:
        rid = msg.get("id")
        name, version = msg.get("name"), msg.get("version")
        checkpoint = msg.get("checkpoint")
        if not name or not version or not checkpoint:
            return {"id": rid, "ok": False, "error": "bad-request",
                    "message": "swap needs name, version, checkpoint"}
        try:
            # Compile + validate off-loop so traffic keeps flowing.
            report = await asyncio.to_thread(
                self.registry.deploy, name, version, checkpoint=checkpoint)
        except SwapValidationError as exc:
            return {"id": rid, "ok": False, "error": "swap-rejected",
                    "message": str(exc)}
        self.metrics.incr("swaps")
        return {"id": rid, "ok": True, "swap": report.as_dict()}

    async def _infer(self, msg: dict) -> dict:
        rid = msg.get("id")
        ref = msg.get("model")
        if not ref or "input" not in msg:
            return {"id": rid, "ok": False, "error": "bad-request",
                    "message": "infer needs model and input"}
        try:
            line, version = self.registry.resolve(ref)
        except NoSuchModelError as exc:
            return {"id": rid, "ok": False, "error": "no-such-model",
                    "message": str(exc.args[0])}
        admitted, reason = line.admission.try_admit()
        if not admitted:
            # The load-shedding fast path: no parse of the input payload
            # beyond this point, no queueing, no compute.
            self.metrics.record_rejection(reason)
            return {"id": rid, "ok": False, "error": "overloaded",
                    "reason": reason}
        start = self.clock.monotonic()
        try:
            sample = np.asarray(msg["input"], dtype=np.float32)
            output, served_by, active = await self._run(line, version,
                                                        sample)
            latency_ms = (self.clock.monotonic() - start) * 1e3
            self.metrics.record_completion(active.ref, latency_ms)
            return {"id": rid, "ok": True, "model": active.ref,
                    "output": output.tolist(), "served_by": served_by,
                    "latency_ms": round(latency_ms, 3)}
        except Exception as exc:  # noqa: BLE001 - answer, don't drop
            self.metrics.incr("errors")
            kind = ("bad-request" if isinstance(exc, ValueError)
                    else "timeout" if isinstance(exc, TimeoutError)
                    else "internal")
            return {"id": rid, "ok": False, "error": kind,
                    "message": f"{type(exc).__name__}: {exc}"}
        finally:
            line.admission.on_complete(
                (self.clock.monotonic() - start) * 1e3)

    async def _run(self, line, version, sample):
        """Batched path with supervisor-style containment.

        Returns ``(output_row, served_by, version_served)``. Raises only
        when the *eager* path also rejects the sample (a client error) —
        engine-side faults degrade, they do not drop.
        """
        if line.degraded:
            out = await asyncio.to_thread(self.registry.eager_infer,
                                          line, version, sample)
            return out, "eager", version

        failure: BaseException | None = None
        for attempt in range(2):
            try:
                ticket = version.runner.submit(sample)
            except RuntimeError:
                # Runner closed under us (hot-swap race): re-resolve and
                # retry on whatever is active now.
                line, version = self.registry.resolve(version.name)
                continue
            outcome = await self._await_ticket(ticket)
            if outcome is _TIMED_OUT:
                self.metrics.incr("cancelled")
                raise TimeoutError(
                    f"inference exceeded "
                    f"{self.config.request_timeout_s:.1f}s budget")
            value, failure = outcome
            if failure is None:
                return value, "batch", version
            if isinstance(failure, RuntimeError) and attempt == 0:
                # "BatchRunner is closed" surfaced through the ticket.
                line, version = self.registry.resolve(version.name)
                continue
            break

        # Batched path is faulty — serial eager fallback, then maybe
        # degrade the line. A ValueError here means the *request* was bad
        # (shape mismatch); that propagates to the client and is not a
        # serving fault.
        try:
            out = await asyncio.to_thread(self.registry.eager_infer,
                                          line, version, sample)
        except ValueError:
            raise
        except Exception:
            if failure is not None:
                raise failure
            raise
        self.metrics.incr("fallbacks")
        self.registry.note_fallback(line, version)
        return out, "eager", version

    async def _await_ticket(self, ticket):
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def resolved(t):
            def finish():
                if not future.done():
                    future.set_result((t._value, t._error))
            loop.call_soon_threadsafe(finish)

        ticket.add_done_callback(resolved)
        try:
            return await asyncio.wait_for(future,
                                          self.config.request_timeout_s)
        except asyncio.TimeoutError:
            ticket.cancel()
            return _TIMED_OUT


_TIMED_OUT = object()


class ServerThread:
    """Run an :class:`InferenceServer` on a background event loop.

    Tests, drills, and the load generator use this to host a real socket
    server inside the current process::

        with ServerThread(registry, ServeConfig()) as srv:
            client = ServeClient("127.0.0.1", srv.port)
    """

    def __init__(self, registry: ModelRegistry,
                 config: ServeConfig | None = None, **server_kwargs):
        self.server = InferenceServer(registry, config, **server_kwargs)
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-serve")

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.server.port is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surface to starter
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.aclose())
            # Connection handlers parked on readline() survive loop.stop();
            # cancel and drain them so the loop closes without orphans.
            tasks = asyncio.all_tasks(self._loop)
            for task in tasks:
                task.cancel()
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
