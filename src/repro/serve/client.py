"""Minimal blocking NDJSON client for the inference server.

Used by the test suite, the fault drills, and the closed-loop load
generator; also handy interactively::

    from repro.serve.client import ServeClient

    with ServeClient("127.0.0.1", 7071) as client:
        probs = client.infer("vgg16", image)       # np.float32 row
        print(client.stats()["latency"])

One socket, one in-flight request: :meth:`request` writes a line and
blocks for the answering line, which matches the server's
one-request-per-connection processing model. Open one client per
concurrent stream.

Float fidelity: outputs travel as JSON numbers. ``float32 → float64 →
shortest-repr decimal → float64 → float32`` is an exact round-trip, so
``infer`` returns arrays *bitwise equal* to what the server computed —
the equivalence tests rely on this.
"""

from __future__ import annotations

import json
import socket

import numpy as np

__all__ = ["ServeClient", "ServerError", "Overloaded", "Draining", "Expired"]


class ServerError(RuntimeError):
    """The server answered with ``ok: false``; carries the payload."""

    def __init__(self, payload: dict):
        super().__init__(payload.get("message")
                         or payload.get("reason")
                         or payload.get("error", "server error"))
        self.payload = payload
        self.error = payload.get("error")


class Overloaded(ServerError):
    """Explicit load-shed rejection (``error: "overloaded"``)."""

    @property
    def reason(self) -> str:
        return self.payload.get("reason", "unknown")


class Draining(ServerError):
    """The server is draining and takes no new requests; retry elsewhere
    (or later — a drain usually precedes a warm restart)."""


class Expired(ServerError):
    """The request's ``deadline_ms`` passed before it could be served."""


class ServeClient:
    """One connection to an :class:`~repro.serve.InferenceServer`."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing -------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request line, block for its response line."""
        self._next_id += 1
        payload.setdefault("id", self._next_id)
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok", False):
            error = response.get("error")
            if error == "overloaded":
                raise Overloaded(response)
            if error == "draining":
                raise Draining(response)
            if error == "expired":
                raise Expired(response)
            raise ServerError(response)
        return response

    # -- verbs ----------------------------------------------------------

    def infer(self, model: str, sample,
              deadline_ms: float | None = None) -> np.ndarray:
        response = self.infer_verbose(model, sample, deadline_ms)
        return np.asarray(response["output"], dtype=np.float32)

    def infer_verbose(self, model: str, sample,
                      deadline_ms: float | None = None) -> dict:
        sample = np.asarray(sample, dtype=np.float32)
        payload = {"op": "infer", "model": model, "input": sample.tolist()}
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        return self.request(payload)

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def models(self) -> dict:
        return self.request({"op": "models"})["models"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def swap(self, name: str, version: str, checkpoint: str) -> dict:
        return self.request({"op": "swap", "name": name, "version": version,
                             "checkpoint": str(checkpoint)})["swap"]

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
