"""Self-healing serve client: reconnect, back off, trip, probe, recover.

:class:`~.client.ServeClient` is deliberately dumb — one socket, first
fault wins. :class:`ResilientClient` wraps it with the operational
behaviours a caller actually wants from a service that sheds load,
drains for restarts, and comes back on a new process:

* **reconnect-on-EOF** — a dropped connection (server restart, network
  blip) is re-dialled transparently and the request re-sent;
* **bounded backoff** — ``overloaded`` / ``draining`` rejections and
  connect failures are retried under a
  :class:`repro.resilience.retry.RetryPolicy` (deterministic seeded
  jitter, hard attempt cap), so a thundering herd of clients spreads out
  and a dead server is given up on, loudly, via
  :class:`~repro.resilience.retry.RetryBudgetExhausted`;
* **idempotent request ids** — every logical request carries a stable
  ``rid``; a retry after a dropped response replays from the server's
  cache, so the work (and every server metric) is counted exactly once
  no matter how many times the wire failed;
* **circuit breaker** — after ``failure_threshold`` consecutive
  transport faults the breaker opens and calls fail fast with
  :class:`CircuitOpenError` instead of queueing behind a dead host;
  after ``cooldown_s`` one half-open probe is allowed through, and its
  outcome closes or re-opens the circuit.

All waiting and timing go through the injectable
:class:`repro.clock.Clock`, so every backoff schedule and breaker
transition is testable on a :class:`repro.clock.FakeClock` without a
single wall-clock sleep.
"""

from __future__ import annotations

import os

import numpy as np

from ..clock import SYSTEM_CLOCK, Clock
from ..resilience.retry import RetryBudgetExhausted, RetryPolicy
from .client import Draining, Overloaded, ServeClient

__all__ = ["CircuitOpenError", "CircuitBreaker", "ResilientClient"]


class CircuitOpenError(RuntimeError):
    """The breaker is open: the server has been failing; try again after
    the cooldown (a half-open probe will test it first)."""


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probes.

    States: ``closed`` (all calls pass) → ``open`` after
    ``failure_threshold`` consecutive failures (calls fail fast) →
    ``half-open`` once ``cooldown_s`` has elapsed (exactly one probe
    passes; its success closes the circuit, its failure re-opens it and
    restarts the cooldown).
    """

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 1.0,
                 *, clock: Clock = SYSTEM_CLOCK):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False

    def allow(self) -> bool:
        """May a call proceed right now? (Half-open admits one probe.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            elapsed = self.clock.monotonic() - self._opened_at
            if elapsed >= self.cooldown_s:
                self.state = "half-open"
                self._probing = True
                return True
            return False
        # half-open: the single probe is already out.
        if not self._probing:
            self._probing = True
            return True
        return False

    def on_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def on_failure(self) -> None:
        self.consecutive_failures += 1
        if (self.state == "half-open"
                or self.consecutive_failures >= self.failure_threshold):
            self.state = "open"
            self._opened_at = self.clock.monotonic()
            self._probing = False

    def clone(self) -> "CircuitBreaker":
        """A fresh (closed) breaker with the same thresholds and clock."""
        return CircuitBreaker(self.failure_threshold, self.cooldown_s,
                              clock=self.clock)

    def snapshot(self) -> dict:
        """JSON-ready view of the breaker's current state."""
        cooldown_remaining = 0.0
        if self.state == "open" and self._opened_at is not None:
            cooldown_remaining = max(
                self.cooldown_s - (self.clock.monotonic() - self._opened_at),
                0.0)
        return {"state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "cooldown_remaining_s": round(cooldown_remaining, 3),
                "probing": self._probing}


class ResilientClient:
    """A :class:`ServeClient` that survives restarts, sheds, and drains.

    Same verbs as :class:`ServeClient`; every request is retried under
    ``policy`` with a stable idempotency key, the connection is re-made
    on EOF, and ``breaker`` (optional) fails fast while the server is
    known-dead. Non-retryable server answers (``bad-request``,
    ``no-such-model``, ``expired``, ...) propagate immediately — backoff
    must never mask a caller bug.

    ``endpoints`` (optional) lists additional ``(host, port)`` fallbacks:
    a transport fault fails the *current* endpoint over to the next one,
    and each endpoint carries its own circuit breaker (cloned from
    ``breaker``), so one dead frontend doesn't open the circuit for its
    healthy siblings. :attr:`stats` exposes the per-endpoint breaker
    states alongside the transport counters.
    """

    RETRYABLE = (Overloaded, Draining, ConnectionError, OSError)

    def __init__(self, host: str, port: int, *,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 clock: Clock = SYSTEM_CLOCK,
                 timeout: float = 60.0,
                 client_id: str | None = None,
                 endpoints: list[tuple[str, int]] | None = None):
        self.endpoints = [(host, int(port))]
        for ep_host, ep_port in endpoints or ():
            self.endpoints.append((ep_host, int(ep_port)))
        self._active = 0
        self.host, self.port = self.endpoints[0]
        self.policy = policy or RetryPolicy(max_attempts=6, base_delay=0.05,
                                            factor=2.0, max_delay=2.0)
        self.breaker = breaker          # the primary endpoint's breaker
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}
        if breaker is not None:
            self._breakers[self.endpoints[0]] = breaker
            for endpoint in self.endpoints[1:]:
                self._breakers[endpoint] = breaker.clone()
        self.clock = clock
        self.timeout = timeout
        # Stable across reconnects, distinct across processes/instances:
        # the server's replay cache keys on it.
        self.client_id = client_id or f"rc-{os.getpid()}-{id(self):x}"
        self._seq = 0
        self._client: ServeClient | None = None
        self._counts = {"reconnects": 0, "retries": 0, "replayed": 0,
                        "breaker_fast_fails": 0, "failovers": 0}

    @property
    def stats(self) -> dict:
        """Transport counters plus per-endpoint circuit-breaker state."""
        payload = dict(self._counts)
        payload["endpoint"] = f"{self.host}:{self.port}"
        if self._breakers:
            payload["breakers"] = {
                f"{ep_host}:{ep_port}": b.snapshot()
                for (ep_host, ep_port), b in self._breakers.items()}
        return payload

    # -- plumbing -------------------------------------------------------

    def _connected(self) -> ServeClient:
        if self._client is None:
            self._client = ServeClient(self.host, self.port,
                                       timeout=self.timeout)
        return self._client

    def _disconnect(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def _endpoint_breaker(self) -> CircuitBreaker | None:
        return self._breakers.get(self.endpoints[self._active])

    def _failover(self) -> None:
        """Point at the next endpoint (no-op with a single endpoint)."""
        if len(self.endpoints) == 1:
            return
        self._disconnect()
        self._active = (self._active + 1) % len(self.endpoints)
        self.host, self.port = self.endpoints[self._active]
        self._counts["failovers"] += 1

    def _admitted(self) -> bool:
        """Position on an endpoint whose breaker admits a call.

        Rotates past open circuits (each endpoint's own breaker decides,
        including the half-open single-probe admission); False when every
        endpoint's circuit is open.
        """
        if not self._breakers:
            return True
        for _ in range(len(self.endpoints)):
            if self._endpoint_breaker().allow():
                return True
            if len(self.endpoints) == 1:
                return False
            self._failover()
        return False

    def request(self, payload: dict, *, idempotent: bool = True) -> dict:
        """Send one logical request, healing the transport as needed."""
        self._seq += 1
        if idempotent:
            payload.setdefault("rid", f"{self.client_id}:{self._seq}")
        last: BaseException | None = None
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self._counts["retries"] += 1
                self.clock.sleep(self.policy.delay(attempt - 1))
            if not self._admitted():
                self._counts["breaker_fast_fails"] += 1
                breaker = self._endpoint_breaker()
                raise CircuitOpenError(
                    f"circuit open after {breaker.consecutive_failures} "
                    f"consecutive failures; cooling down "
                    f"{breaker.cooldown_s:.1f}s")
            breaker = self._endpoint_breaker()
            try:
                response = self._connected().request(dict(payload))
            except (Overloaded, Draining) as exc:
                # The server answered — it is alive, just not willing.
                # That feeds backoff, not the breaker.
                if breaker is not None:
                    breaker.on_success()
                last = exc
                continue
            except (ConnectionError, OSError) as exc:
                self._disconnect()
                self._counts["reconnects"] += 1
                if breaker is not None:
                    breaker.on_failure()
                self._failover()
                last = exc
                continue
            if breaker is not None:
                breaker.on_success()
            if response.get("replayed"):
                self._counts["replayed"] += 1
            return response
        raise RetryBudgetExhausted(
            f"request still failing after {self.policy.max_attempts} "
            f"attempts: {last}", attempts=self.policy.max_attempts) from last

    # -- verbs ----------------------------------------------------------

    def infer(self, model: str, sample,
              deadline_ms: float | None = None) -> np.ndarray:
        response = self.infer_verbose(model, sample, deadline_ms)
        return np.asarray(response["output"], dtype=np.float32)

    def infer_verbose(self, model: str, sample,
                      deadline_ms: float | None = None) -> dict:
        sample = np.asarray(sample, dtype=np.float32)
        payload = {"op": "infer", "model": model, "input": sample.tolist()}
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        return self.request(payload)

    def stats_snapshot(self) -> dict:
        return self.request({"op": "stats"}, idempotent=False)["stats"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"},
                                 idempotent=False).get("pong"))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
