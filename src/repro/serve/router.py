"""Health-aware request router over a :class:`~.replica.ReplicaSet`.

The asyncio frontend (:class:`~.server.InferenceServer`) stays the single
front door; when constructed with a router it stops running inference on
its own thread and instead dispatches each accepted request to one of N
replica processes:

* **least-outstanding routing** — the replica with the fewest in-flight
  requests wins (ties break on total served, then id), skipping replicas
  whose circuit breaker is open;
* **liveness probes** — a periodic ``ping`` per replica, answered by the
  replica's *serving* threads: a wedged replica with a healthy heartbeat
  thread fails the probe and is SIGKILLed, funnelling hangs into the
  same EOF-detection path as crashes (the PR 5 watchdog story);
* **idempotent re-dispatch** — every request is keyed by a router
  ``rid``; when a replica dies, its outstanding rids are immediately
  re-sent to surviving replicas (bounded by ``max_dispatch_retries``).
  The first reply wins and duplicates are discarded, so an accepted
  request is answered exactly once no matter how many replicas failed
  under it;
* **hedged retries** — with ``hedge_after_ms`` set, a request still
  unanswered after that long is duplicated onto a second replica *if*
  its deadline budget allows; first answer wins;
* **bounded respawn → degrade** — dead replicas are respawned through
  the set's shared :class:`~repro.resilience.retry.RetryPolicy` budget;
  once it is spent the router flips to ``degraded``
  (``stop_reason="replicas-degraded"``), resolves everything in flight
  toward the server's in-process single-runner path, and stops touching
  processes. Accepted requests survive the transition;
* **rolling deploys** — :meth:`ReplicaRouter.rolling_deploy` drains and
  re-deploys one replica at a time through each replica's own
  compile+probe-validate gate, so capacity never drops below N−1 and a
  rejected artifact aborts with every replica still on the old version.

Failing over to the local path is signalled with
:class:`ReplicasUnavailable` — the server catches it and serves the
request itself, so "no replica could take it" degrades latency, never
correctness.
"""

from __future__ import annotations

import asyncio
import json

from ..clock import SYSTEM_CLOCK, Clock
from ..infer.batcher import DeadlineExpired
from .metrics import LatencyReservoir, sum_counters
from .replica import ReplicaSet, ReplicaSpec
from .resilient import CircuitBreaker

__all__ = ["ReplicasUnavailable", "ReplicaRouter"]


class ReplicasUnavailable(RuntimeError):
    """No replica could serve this request; the caller should serve it
    on the in-process path instead. Never surfaces to a client."""


class _Peer:
    """Router-side connection + routing state for one replica seat."""

    def __init__(self, handle, breaker: CircuitBreaker):
        self.handle = handle
        self.breaker = breaker
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.reader_task: asyncio.Task | None = None
        self.rids: set[str] = set()     # in-flight request/control rids
        self.alive = False              # transport up
        self.routable = False           # deployed + accepting traffic
        self.reviving = False
        self.served = 0
        self.probe_rid: str | None = None
        self.probe_sent_at: float = 0.0


class _ReqMeta:
    """Re-dispatch bookkeeping for one inference rid."""

    __slots__ = ("payload", "deadline", "attempts", "hedged")

    def __init__(self, payload: dict, deadline: float | None):
        self.payload = payload
        self.deadline = deadline
        self.attempts = 0               # re-dispatches so far
        self.hedged = False


class ReplicaRouter:
    """Dispatches server requests across a :class:`ReplicaSet`."""

    def __init__(self, replica_set: ReplicaSet,
                 specs: list[ReplicaSpec] | tuple[ReplicaSpec, ...], *,
                 metrics=None, clock: Clock = SYSTEM_CLOCK):
        self.set = replica_set
        self.config = replica_set.config
        self.specs = list(specs)
        self.metrics = metrics          # ServerMetrics, set by the server
        self.clock = clock
        self.degraded = False
        self.stop_reason: str | None = None
        self._started = False
        self._closing = False
        self._seq = 0
        self._inflight: dict[str, asyncio.Future] = {}
        self._meta: dict[str, _ReqMeta] = {}
        self._peers = [
            _Peer(handle, CircuitBreaker(self.config.breaker_failures,
                                         self.config.breaker_cooldown_s,
                                         clock=clock))
            for handle in replica_set.handles]
        self._probe_task: asyncio.Task | None = None
        self._rolling_lock: asyncio.Lock | None = None

    @property
    def usable(self) -> bool:
        return self._started and not self.degraded and not self._closing

    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)

    def _next_rid(self, prefix: str) -> str:
        self._seq += 1
        return f"{prefix}{self._seq}"

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Connect to every replica and deploy the initial specs.

        Raises if any replica fails to come up or rejects a deploy —
        a broken initial configuration is a startup error, not a fault
        to route around.
        """
        self._rolling_lock = asyncio.Lock()
        try:
            await asyncio.gather(*(self._attach(peer)
                                   for peer in self._peers))
        except BaseException:
            await self.aclose()
            raise
        self._probe_task = asyncio.create_task(self._probe_loop())
        self._started = True

    async def aclose(self) -> None:
        if self._closing:
            return
        self._closing = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
        for peer in self._peers:
            await self._detach(peer)
        for fut in self._inflight.values():
            if not fut.done():
                fut.set_exception(ReplicasUnavailable("router closing"))
        await asyncio.to_thread(self.set.close)

    # -- transport ------------------------------------------------------

    async def _attach(self, peer: _Peer) -> None:
        """Dial one replica's socket and push the current specs through
        its deploy gate; on any failure the peer is left fully detached."""
        handle = peer.handle
        deadline = self.clock.monotonic() + self.config.start_deadline_s
        while True:
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(handle.socket_path))
                break
            except (FileNotFoundError, ConnectionRefusedError, OSError):
                if not handle.alive:
                    raise RuntimeError(
                        f"replica {handle.replica_id} died during startup "
                        f"(exitcode {handle.proc.exitcode})")
                if self.clock.monotonic() >= deadline:
                    raise RuntimeError(
                        f"replica {handle.replica_id} did not come up "
                        f"within {self.config.start_deadline_s:.1f}s")
                await asyncio.sleep(0.02)
        peer.reader, peer.writer = reader, writer
        peer.alive = True
        peer.reader_task = asyncio.create_task(self._read_loop(peer))
        try:
            for spec in self.specs:
                reply = await self._control(
                    peer, spec.deploy_payload(),
                    timeout=self.config.deploy_timeout_s)
                if not reply.get("ok"):
                    raise RuntimeError(
                        f"replica {handle.replica_id} rejected deploy of "
                        f"{spec.ref}: {reply.get('message', reply)}")
        except BaseException:
            await self._detach(peer)
            raise
        peer.routable = True

    async def _detach(self, peer: _Peer) -> None:
        peer.alive = False
        peer.routable = False
        task, peer.reader_task = peer.reader_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: B014,BLE001
                pass
        if peer.writer is not None:
            peer.writer.close()
        peer.reader = peer.writer = None
        peer.probe_rid = None

    def _send(self, peer: _Peer, payload: dict) -> bool:
        if peer.writer is None or peer.writer.is_closing():
            return False
        try:
            peer.writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        except (ConnectionError, OSError, RuntimeError):
            return False
        return True

    async def _read_loop(self, peer: _Peer) -> None:
        try:
            while True:
                line = await peer.reader.readline()
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except ValueError:
                    continue
                self._on_reply(peer, msg)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            return                      # orderly detach, not a fault
        if not self._closing:
            self._on_peer_down(peer)

    # -- reply / failure handling ---------------------------------------

    def _on_reply(self, peer: _Peer, msg: dict) -> None:
        rid = msg.get("rid")
        if rid is None:
            return
        peer.rids.discard(rid)
        if rid == peer.probe_rid:
            peer.probe_rid = None
            peer.breaker.on_success()
            return
        fut = self._inflight.get(rid)
        if fut is None or fut.done():
            # A hedge/re-dispatch duplicate arriving after the winner, or
            # a reply to a request whose caller already timed out.
            self._incr("replica_duplicates")
            return
        peer.served += 1
        peer.breaker.on_success()
        fut.set_result((peer, msg))

    def _on_peer_down(self, peer: _Peer) -> None:
        """Transport died: strand-proof every rid it was carrying, then
        start the bounded respawn path (unless already degraded)."""
        if not peer.alive:
            return
        peer.alive = False
        peer.routable = False
        peer.breaker.on_failure()
        if peer.writer is not None:
            peer.writer.close()
        peer.reader = peer.writer = None
        peer.reader_task = None
        peer.probe_rid = None
        handle = peer.handle
        if handle.kill_reason is None:
            exitcode = handle.proc.exitcode if handle.proc else None
            self.set.emit("crash", handle.replica_id,
                          detail=f"replica connection lost "
                                 f"(exitcode {exitcode})")
        stranded, peer.rids = sorted(peer.rids), set()
        for rid in stranded:
            self._redispatch(rid)
        if not self._closing and not self.degraded and not peer.reviving:
            peer.reviving = True
            asyncio.create_task(self._revive(peer))

    def _redispatch(self, rid: str) -> None:
        """Re-send one stranded rid to a surviving replica (bounded)."""
        fut = self._inflight.get(rid)
        if fut is None or fut.done():
            return
        if any(rid in p.rids for p in self._peers):
            return                      # hedged copy still in flight
        meta = self._meta.get(rid)
        if meta is None:                # control request: not re-playable
            fut.set_exception(
                ReplicasUnavailable("replica died mid-request"))
            return
        if meta.attempts >= self.config.max_dispatch_retries:
            fut.set_exception(ReplicasUnavailable(
                f"re-dispatch budget spent "
                f"({self.config.max_dispatch_retries})"))
            return
        peer = self._pick()
        if peer is None:
            fut.set_exception(
                ReplicasUnavailable("no routable replica left"))
            return
        meta.attempts += 1
        self._incr("replica_redispatches")
        self._send_infer(peer, rid, meta)

    async def _revive(self, peer: _Peer) -> None:
        """Respawn + re-attach one seat until it serves or budgets die."""
        handle = peer.handle
        try:
            while not self._closing and not self.degraded:
                ok = await asyncio.to_thread(self.set.respawn,
                                             handle.replica_id)
                if not ok:
                    self._degrade("replica respawn budget exhausted")
                    return
                try:
                    await self._attach(peer)
                    return
                except Exception as exc:  # noqa: BLE001 - retry in budget
                    self.set.kill(handle.replica_id,
                                  reason=f"re-attach failed: {exc}",
                                  kind="crash")
        finally:
            peer.reviving = False

    def _degrade(self, reason: str) -> None:
        """Budgets are spent: flip to the in-process single-runner path."""
        if self.degraded:
            return
        self.degraded = True
        self.stop_reason = "replicas-degraded"
        self._incr("replica_degrades")
        self.set.emit("degrade", -1, detail=reason)
        if self._probe_task is not None:
            self._probe_task.cancel()
        for fut in self._inflight.values():
            if not fut.done():
                # Resolves toward the server's local fallback — accepted
                # requests ride out the degrade, they are not dropped.
                fut.set_exception(ReplicasUnavailable(reason))
        for peer in self._peers:
            if peer.reader_task is not None:
                peer.reader_task.cancel()
                peer.reader_task = None
            if peer.writer is not None:
                peer.writer.close()
            peer.reader = peer.writer = None
            peer.alive = peer.routable = False
        asyncio.create_task(asyncio.to_thread(self.set.close))

    # -- routing --------------------------------------------------------

    def _pick(self, exclude: tuple[int, ...] = ()) -> _Peer | None:
        """Least-outstanding routable replica whose breaker admits it."""
        candidates = [p for p in self._peers
                      if p.alive and p.routable
                      and p.handle.replica_id not in exclude]
        candidates.sort(key=lambda p: (len(p.rids), p.served,
                                       p.handle.replica_id))
        for peer in candidates:
            # allow() consumes the half-open probe slot, so it is only
            # asked of the peer we would actually use, best first.
            if peer.breaker.allow():
                return peer
        return None

    def _send_infer(self, peer: _Peer, rid: str, meta: _ReqMeta) -> None:
        payload = dict(meta.payload)
        payload["rid"] = rid
        if meta.deadline is not None:
            payload["deadline_ms"] = max(
                (meta.deadline - self.clock.monotonic()) * 1e3, 1.0)
        peer.rids.add(rid)
        if not self._send(peer, payload):
            peer.rids.discard(rid)
            self._on_peer_down(peer)    # dead transport found early
            self._redispatch(rid)       # bounded by meta.attempts

    def _hedge_wait(self, deadline: float | None) -> float | None:
        """Seconds to wait before hedging, or None when hedging is off /
        the deadline budget cannot fund a useful second attempt."""
        if self.config.hedge_after_ms is None:
            return None
        wait = self.config.hedge_after_ms / 1e3
        if deadline is not None:
            remaining = deadline - self.clock.monotonic()
            if remaining <= 2 * wait:
                return None
        return wait

    def _hedge(self, rid: str, exclude: tuple[int, ...]) -> None:
        fut = self._inflight.get(rid)
        meta = self._meta.get(rid)
        if fut is None or fut.done() or meta is None or meta.hedged:
            return
        peer = self._pick(exclude=exclude)
        if peer is None:
            return                      # nobody to hedge onto; keep waiting
        meta.hedged = True
        self._incr("replica_hedges")
        self._send_infer(peer, rid, meta)

    async def dispatch_infer(self, ref: str, raw_input,
                             deadline: float | None = None) -> dict:
        """Route one inference; returns the winning replica's reply.

        ``deadline`` is absolute seconds on the router's clock. Raises
        :class:`ReplicasUnavailable` when the request should be served
        locally instead, :class:`DeadlineExpired`/`TimeoutError` when its
        budget ran out here.
        """
        if not self.usable:
            raise ReplicasUnavailable(self.stop_reason or "router not up")
        rid = self._next_rid("q")
        meta = _ReqMeta({"op": "infer", "model": ref, "input": raw_input},
                        deadline)
        fut = asyncio.get_running_loop().create_future()
        self._inflight[rid] = fut
        self._meta[rid] = meta
        try:
            peer = self._pick()
            if peer is None:
                raise ReplicasUnavailable("no routable replica")
            primary = peer.handle.replica_id
            self._send_infer(peer, rid, meta)
            timeout = self.config.request_timeout_s
            if deadline is not None:
                timeout = min(timeout,
                              max(deadline - self.clock.monotonic(), 0.0))
            hedge_wait = self._hedge_wait(deadline)
            try:
                if hedge_wait is not None and hedge_wait < timeout:
                    try:
                        _, msg = await asyncio.wait_for(
                            asyncio.shield(fut), hedge_wait)
                    except asyncio.TimeoutError:
                        self._hedge(rid, exclude=(primary,))
                        _, msg = await asyncio.wait_for(
                            fut, timeout - hedge_wait)
                else:
                    _, msg = await asyncio.wait_for(fut, timeout)
            except asyncio.TimeoutError:
                if deadline is not None \
                        and self.clock.monotonic() >= deadline:
                    raise DeadlineExpired(
                        "request deadline passed while waiting for a "
                        "replica") from None
                raise TimeoutError(
                    f"replicated inference exceeded "
                    f"{self.config.request_timeout_s:.1f}s budget") from None
            return msg
        finally:
            self._inflight.pop(rid, None)
            self._meta.pop(rid, None)
            for p in self._peers:
                p.rids.discard(rid)

    # -- liveness probes -------------------------------------------------

    async def _probe_loop(self) -> None:
        while not self._closing and not self.degraded:
            await asyncio.sleep(self.config.probe_interval_s)
            self.probe_scan(self.clock.monotonic())

    def probe_scan(self, now: float) -> None:
        """One probe round (factored out of the loop for deterministic
        tests): time out wedged replicas, then send fresh pings."""
        for peer in self._peers:
            if not peer.alive or not peer.routable:
                continue
            if peer.probe_rid is not None:
                waited = now - peer.probe_sent_at
                if waited >= self.config.probe_timeout_s:
                    peer.breaker.on_failure()
                    self.set.kill(
                        peer.handle.replica_id,
                        reason=f"liveness probe unanswered for "
                               f"{waited:.2f}s (limit "
                               f"{self.config.probe_timeout_s}s)",
                        kind="hang")
                continue
            rid = self._next_rid("p")
            peer.probe_rid = rid
            peer.probe_sent_at = now
            self._send(peer, {"op": "ping", "rid": rid})

    # -- control-plane requests ------------------------------------------

    async def _control(self, peer: _Peer, payload: dict,
                       timeout: float) -> dict:
        """One rid-keyed request to a *specific* replica (deploy/stats).

        Control requests are not re-dispatchable; a replica death turns
        into an error reply, never a retry on a different replica."""
        rid = self._next_rid("c")
        fut = asyncio.get_running_loop().create_future()
        self._inflight[rid] = fut
        peer.rids.add(rid)
        try:
            if not peer.alive or not self._send(peer,
                                                {**payload, "rid": rid}):
                return {"ok": False, "error": "replica-down",
                        "message": f"replica {peer.handle.replica_id} "
                                   "is not reachable"}
            try:
                _, msg = await asyncio.wait_for(fut, timeout)
            except asyncio.TimeoutError:
                return {"ok": False, "error": "timeout",
                        "message": f"replica {peer.handle.replica_id} did "
                                   f"not answer within {timeout:.1f}s"}
            except ReplicasUnavailable as exc:
                return {"ok": False, "error": "replica-down",
                        "message": str(exc)}
            return msg
        finally:
            self._inflight.pop(rid, None)
            peer.rids.discard(rid)

    # -- rolling deploy ---------------------------------------------------

    def _set_spec(self, spec: ReplicaSpec) -> None:
        self.specs = [s for s in self.specs if s.name != spec.name]
        self.specs.append(spec)

    async def _drain_peer(self, peer: _Peer) -> None:
        deadline = self.clock.monotonic() + self.config.rolling_drain_timeout_s
        while peer.rids and self.clock.monotonic() < deadline:
            await asyncio.sleep(self.config.drain_poll_s)

    async def rolling_deploy(self, name: str, version: str, *,
                             checkpoint=None, artifact=None) -> dict:
        """Drain + re-deploy one replica at a time; abort on first reject.

        At most one replica is unroutable at any instant (capacity never
        below N−1); each replica runs the full compile+probe-validate
        deploy gate itself, and a rejection aborts the roll with every
        replica — including the one that rejected — still serving the
        old version. Only after every live replica accepted does the new
        spec become what respawned replicas will deploy.
        """
        spec = ReplicaSpec(name, version,
                           checkpoint=None if checkpoint is None
                           else str(checkpoint),
                           artifact=None if artifact is None
                           else str(artifact))
        if self._rolling_lock is None or not self.usable:
            return {"ok": False, "error": "replicas-unavailable",
                    "message": self.stop_reason or "router not up"}
        async with self._rolling_lock:
            updated: list[int] = []
            last_swap = None
            for peer in sorted(self._peers,
                               key=lambda p: p.handle.replica_id):
                if not (peer.alive and peer.routable):
                    continue            # a dead seat redeploys at revive
                peer.routable = False
                self.set.emit("rolling", peer.handle.replica_id,
                              detail=f"drain + deploy {spec.ref}")
                try:
                    await self._drain_peer(peer)
                    reply = await self._control(
                        peer, spec.deploy_payload(),
                        timeout=self.config.deploy_timeout_s)
                finally:
                    peer.routable = peer.alive
                if not reply.get("ok"):
                    return {"ok": False,
                            "error": reply.get("error", "swap-rejected"),
                            "message": reply.get("message", ""),
                            "updated": updated,
                            "aborted_at": peer.handle.replica_id}
                last_swap = reply.get("swap")
                updated.append(peer.handle.replica_id)
            self._set_spec(spec)
            self._incr("replica_rolling_deploys")
            return {"ok": True, "updated": updated, "swap": last_swap}

    # -- fleet stats ------------------------------------------------------

    async def fleet_snapshot(self) -> dict:
        """Fleet-wide p50/p99 + counters, with a per-replica breakdown.

        Per-replica reservoirs come back over the wire as raw sample
        windows and are merged with :meth:`LatencyReservoir.merged`;
        counters sum with :func:`sum_counters`. Replicas that fail to
        answer in time simply contribute nothing — stats must never
        block the control plane on a sick replica.
        """
        per_replica: dict[str, dict] = {}
        for peer in self._peers:
            per_replica[str(peer.handle.replica_id)] = {
                "alive": peer.alive,
                "routable": peer.routable,
                "outstanding": len(peer.rids),
                "served": peer.served,
                "generation": peer.handle.generation,
                "restarts": peer.handle.restarts,
                "breaker": peer.breaker.snapshot(),
            }
        alive = [p for p in self._peers if p.alive]
        replies = await asyncio.gather(
            *(self._control(p, {"op": "stats"}, timeout=2.0)
              for p in alive), return_exceptions=True)
        reservoirs: list[LatencyReservoir] = []
        counter_maps: list[dict] = []
        for peer, reply in zip(alive, replies):
            if isinstance(reply, BaseException) or not reply.get("ok"):
                continue
            stats = reply.get("stats", {})
            entry = per_replica[str(peer.handle.replica_id)]
            entry["counters"] = stats.get("counters", {})
            entry["latency"] = stats.get("latency")
            entry["models"] = stats.get("models")
            samples = stats.get("latency_samples", [])
            lifetime = (stats.get("latency") or {}).get("count")
            reservoirs.append(LatencyReservoir.from_samples(
                samples, lifetime=lifetime))
            counter_maps.append(stats.get("counters", {}))
        return {
            "degraded": self.degraded,
            "stop_reason": self.stop_reason,
            "respawns": self.set.respawns_used,
            "events": [e.payload() for e in self.set.events[-20:]],
            "fleet": {
                "counters": sum_counters(counter_maps),
                "latency": (LatencyReservoir.merged(reservoirs).summary()
                            if reservoirs else None),
            },
            "per_replica": per_replica,
        }
