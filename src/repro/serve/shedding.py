"""Admission control: reject early, explicitly, and in O(1).

An overloaded service has exactly two honest options: make *everyone*
slower (unbounded queueing — latency grows without bound and eventually
every response misses its deadline) or tell *some* callers "not now" in
microseconds and keep the rest inside their budget. This module is the
second option.

:class:`AdmissionController` gates every request before it touches the
batching queue:

* **depth bound** — at most ``max_pending`` admitted-but-unfinished
  requests per model; beyond that the request is rejected with reason
  ``"queue-full"``. This caps memory and bounds the queueing delay any
  admitted request can experience.
* **SLO budget** — a rolling reservoir of recent completion latencies;
  once its p99 exceeds ``p99_budget_ms`` new requests are rejected with
  reason ``"slo"`` *unless* the queue is nearly empty
  (``probe_pending``), so a trickle of probe traffic keeps flowing,
  refreshes the reservoir, and lets the controller discover recovery
  instead of shedding forever on stale data.
* **deadline feasibility** — a request that carries a remaining deadline
  budget (``remaining_ms``) is rejected with reason ``"deadline"`` when
  the budget is already spent or smaller than the recent median service
  time: the engine cannot possibly answer in time, so admitting it would
  only burn compute on a response nobody will read.

Decisions are pure functions of recorded state — no clock, no threads —
so tests assert exact admit/reject sequences.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .metrics import LatencyReservoir

__all__ = ["SheddingConfig", "AdmissionController"]


@dataclass(frozen=True)
class SheddingConfig:
    """Bounds enforced at admission time."""

    max_pending: int = 64          # admitted-but-unfinished requests
    p99_budget_ms: float | None = 200.0   # None disables the SLO gate
    probe_pending: int = 2         # SLO gate lifts below this depth
    reservoir: int = 256           # completion latencies kept for p99

    def __post_init__(self):
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.p99_budget_ms is not None and self.p99_budget_ms <= 0:
            raise ValueError("p99_budget_ms must be positive")
        if self.probe_pending < 1:
            raise ValueError("probe_pending must be >= 1")


class AdmissionController:
    """Per-model gatekeeper; thread-safe, O(1) per decision."""

    def __init__(self, config: SheddingConfig | None = None):
        self.config = config or SheddingConfig()
        self._lock = threading.Lock()
        self._pending = 0
        self._latencies = LatencyReservoir(self.config.reservoir)
        self.admitted = 0
        self.rejected: dict[str, int] = {}

    @property
    def pending(self) -> int:
        return self._pending

    def try_admit(self, *, remaining_ms: float | None = None
                  ) -> tuple[bool, str | None]:
        """Admit or name the reason not to. Admission bumps ``pending``.

        ``remaining_ms`` is the request's remaining deadline budget;
        requests that cannot possibly be answered inside it (budget
        spent, or below the recent median service time) are shed with
        reason ``"deadline"`` before they take a queue slot.
        """
        cfg = self.config
        with self._lock:
            if remaining_ms is not None:
                floor = self._latencies.percentile(50.0)
                if remaining_ms <= 0 or (floor is not None
                                         and remaining_ms < floor):
                    self.rejected["deadline"] = \
                        self.rejected.get("deadline", 0) + 1
                    return False, "deadline"
            if self._pending >= cfg.max_pending:
                self.rejected["queue-full"] = \
                    self.rejected.get("queue-full", 0) + 1
                return False, "queue-full"
            if (cfg.p99_budget_ms is not None
                    and self._pending >= cfg.probe_pending):
                p99 = self._latencies.percentile(99.0)
                if p99 is not None and p99 > cfg.p99_budget_ms:
                    self.rejected["slo"] = self.rejected.get("slo", 0) + 1
                    return False, "slo"
            self._pending += 1
            self.admitted += 1
            return True, None

    def on_complete(self, latency_ms: float) -> None:
        """One admitted request finished (success or failure)."""
        with self._lock:
            self._pending = max(self._pending - 1, 0)
            self._latencies.record(latency_ms)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self.config.max_pending,
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
                "p99_budget_ms": self.config.p99_budget_ms,
                "recent_p99_ms": self._latencies.percentile(99.0),
            }
