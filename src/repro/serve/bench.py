"""Serving benchmark lane: latency/throughput vs offered load.

Boots a real :class:`~repro.serve.InferenceServer` on an ephemeral port
with a dense and a channel-pruned variant of the bench model, then sweeps
closed-loop offered load (concurrent connections) against each variant
with :func:`repro.serve.loadgen.run_load`. The payload lands in
``BENCH_serve.json``; schema in ``docs/serving.md``.

This is where pruning pays off operationally: the pruned variant runs the
same protocol, the same batching, the same shedding — and serves more
requests per second per box purely because each batch is cheaper. The
``int8`` variant deploys the pruned model through the quantized compile
path (:mod:`repro.qinfer` — percentile calibration, top-1 swap gate), so
the sweep also measures the fused prune+quantize deployable.

Smoke mode (CI) shrinks the model and the sweep and *asserts* the serving
contract: finite p99, zero errors, zero dropped requests.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from ..models import build_model
from ..verify.invariants import perturb_batchnorm_stats
from .loadgen import run_load
from .registry import ModelRegistry
from .server import ServeConfig, ServerThread
from .shedding import SheddingConfig

__all__ = ["run_bench", "write_bench", "format_table"]


# Mirrors repro.infer.bench sizing: big enough to show batching wins,
# small enough for a laptop sweep.
_BENCH_MODEL = dict(name="vgg11", num_classes=10, image_size=16,
                    width=0.25, seed=0)
_SMOKE_MODEL = dict(name="vgg11", num_classes=3, image_size=8,
                    width=0.125, seed=0)
_PRUNE_FRACTION = 0.5


def _build_variant(spec: dict, pruned: bool):
    from ..infer.bench import _prune_model

    kwargs = dict(spec)
    name = kwargs.pop("name")
    model = build_model(name, **kwargs)
    perturb_batchnorm_stats(model, seed=kwargs.get("seed", 0))
    if pruned:
        _prune_model(model, kwargs.get("seed", 0))
    model.eval()
    return model


_VARIANTS = ("dense", "pruned", "int8")


def run_bench(smoke: bool = False, seed: int = 0,
              connections=(1, 4, 16), requests_per_connection: int = 40,
              max_batch: int = 16, max_pending: int = 256,
              variants=_VARIANTS, replicas: int = 0) -> dict:
    """Serve the variant sweep under offered load, return the payload.

    ``variants`` selects columns from ``("dense", "pruned", "int8")``;
    the int8 variant is the pruned model deployed through the quantized
    compile path, so dense→pruned→int8 reads as cumulative optimisation.

    ``replicas > 0`` runs the replicated tier: the same variants are
    deployed to ``replicas`` worker processes behind the health-aware
    router (dense/pruned from checkpoints, int8 from its compiled plan
    artifact), and the sweep measures the fleet. Every entry carries a
    ``replicas`` column so the two topologies stay distinguishable in
    ``BENCH_serve.json``.
    """
    unknown = [v for v in variants if v not in _VARIANTS]
    if unknown:
        raise ValueError(f"unknown serve-bench variant(s): {unknown} "
                         f"(choose from {_VARIANTS})")
    spec = _SMOKE_MODEL if smoke else _BENCH_MODEL
    if smoke:
        connections = tuple(c for c in connections if c <= 4) or (1, 4)
        requests_per_connection = min(requests_per_connection, 12)
    image_size = spec["image_size"]
    sample_shape = (3, image_size, image_size)

    # The bench measures capacity, not the shed policy: pending headroom
    # and no SLO gate, so every request completes and percentiles cover
    # the full distribution.
    registry = ModelRegistry(
        max_batch=max_batch,
        shedding=SheddingConfig(max_pending=max_pending,
                                p99_budget_ms=None))
    entries = []
    rng = np.random.default_rng(seed)
    models: dict[str, object] = {}
    with registry:
        for variant in variants:
            model = _build_variant(spec, pruned=(variant != "dense"))
            models[variant] = model
            kwargs = {}
            if variant == "int8":
                kwargs = dict(quantize="int8", calibrate=[
                    rng.normal(size=(max_batch, *sample_shape)
                               ).astype(np.float32) for _ in range(3)])
            registry.deploy(f"{spec['name']}-{variant}", "v1", model=model,
                            input_shape=sample_shape, seed=seed, **kwargs)
        router = rset = tmpdir = None
        if replicas:
            from ..io import save_model
            from ..qinfer.artifact import save_plan
            from .replica import ReplicaConfig, ReplicaSet, ReplicaSpec
            from .router import ReplicaRouter
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
            specs = []
            for variant in variants:
                ref = f"{spec['name']}-{variant}"
                if variant == "int8":
                    # Replicas must serve the *same* int8 engine, not a
                    # requantisation — ship the compiled plan artifact.
                    _, active = registry.resolve(ref)
                    path = Path(tmpdir.name) / f"{ref}.rplan"
                    save_plan(active.engine.plan, path)
                    specs.append(ReplicaSpec(ref, "v1", artifact=str(path)))
                else:
                    path = Path(tmpdir.name) / f"{ref}.npz"
                    save_model(models[variant], path)
                    specs.append(ReplicaSpec(ref, "v1",
                                             checkpoint=str(path)))
            rset = ReplicaSet(ReplicaConfig(replicas=int(replicas),
                                            max_batch=max_batch))
            router = ReplicaRouter(rset, specs)
        try:
            with ServerThread(registry, ServeConfig(), router=router) as srv:
                for variant in variants:
                    ref = f"{spec['name']}-{variant}"
                    for conns in connections:
                        report = run_load(srv.host, srv.port, ref,
                                          sample_shape,
                                          connections=conns,
                                          requests_per_connection=
                                          requests_per_connection,
                                          seed=seed)
                        entry = {"variant": variant,
                                 "replicas": int(replicas),
                                 **report.as_dict()}
                        entries.append(entry)
                        if smoke:
                            _assert_smoke_contract(entry)
        finally:
            if rset is not None:
                rset.close()            # idempotent; server closes it too
            if tmpdir is not None:
                tmpdir.cleanup()

    return {
        "benchmark": "repro.serve closed-loop latency/throughput",
        "smoke": bool(smoke),
        "replicas": int(replicas),
        "seed": int(seed),
        "model": spec["name"],
        "max_batch": int(max_batch),
        "requests_per_connection": int(requests_per_connection),
        "connection_sweep": [int(c) for c in connections],
        "variants": list(variants),
        "numpy": np.__version__,
        "entries": entries,
    }


def _assert_smoke_contract(entry: dict) -> None:
    """CI tripwire: the serving contract must hold even at smoke scale."""
    if entry["dropped"] != 0:
        raise AssertionError(f"serve bench dropped requests: {entry}")
    if entry["errors"] != 0:
        raise AssertionError(f"serve bench saw request errors: {entry}")
    p99 = entry["p99_ms"]
    if p99 is None or not np.isfinite(p99) or p99 <= 0:
        raise AssertionError(f"serve bench p99 not finite/positive: {entry}")


def write_bench(results: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")


def format_table(results: dict) -> str:
    header = (f"{'model':<14} {'variant':<7} {'repl':>4} {'conns':>5} "
              f"{'rps':>8} {'p50 ms':>8} {'p99 ms':>8} "
              f"{'rejected':>8} {'dropped':>7}")
    lines = [header, "-" * len(header)]
    for e in results["entries"]:
        p50 = f"{e['p50_ms']:.2f}" if e["p50_ms"] is not None else "-"
        p99 = f"{e['p99_ms']:.2f}" if e["p99_ms"] is not None else "-"
        lines.append(
            f"{e['model']:<14} {e['variant']:<7} "
            f"{e.get('replicas', 0):>4} {e['connections']:>5} "
            f"{e['throughput_rps']:>8.1f} {p50:>8} {p99:>8} "
            f"{e['rejected']:>8} {e['dropped']:>7}")
    return "\n".join(lines)
