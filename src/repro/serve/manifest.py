"""Deploy manifest: journal every deploy, rebuild the registry after one.

A serving process dies — OOM kill, node reboot, planned restart — and
everything it knew about its ``name@version`` lines dies with it unless
that knowledge lives somewhere durable. :class:`ServeManifest` is that
somewhere: an append-only, CRC-framed journal (the
:class:`repro.resilience.journal.RunJournal` primitive) of every deploy,
plus a checkpoint directory for models that were deployed from memory
(snapshotted through the atomic, checksummed
:func:`repro.io.save_model`).

Warm restart (:func:`restore_registry`, ``repro serve --resume <dir>``)
replays the manifest: the last-deployed version of every name goes back
through the *same* deploy gate as live traffic — checksum-verified
checkpoint load, compile, probe validation — so a restart can never
quietly serve a model that would have been rejected at deploy time. An
entry that fails (corrupted checkpoint, failed validation, missing file)
is skipped and named in the :class:`RestoreReport`; the healthy rest of
the fleet comes back up.

Corruption tolerance mirrors the run journal: a truncated or bit-flipped
*tail* record is detected by its CRC and dropped (``journal_truncated``
in the report), and a corrupted checkpoint fails its content digest in
:func:`repro.io.load_model` rather than loading garbage weights.
"""

from __future__ import annotations

from pathlib import Path

from ..resilience.journal import RunJournal

__all__ = ["ServeManifest", "RestoreReport", "restore_registry"]

MANIFEST_NAME = "manifest.jsonl"


class ServeManifest:
    """Journal of deploys under one directory; enough to rebuild a registry.

    Layout::

        <root>/
            manifest.jsonl            # CRC-framed deploy journal
            checkpoints/<name>@<version>.npz   # snapshots of model= deploys
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.checkpoint_dir = self.root / "checkpoints"
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.journal = RunJournal(self.root / MANIFEST_NAME)

    @property
    def truncated(self) -> bool:
        """True when the journal had a corrupt tail (dropped on read)."""
        return self.journal.truncated

    # -- writing --------------------------------------------------------

    def snapshot_path(self, name: str, version: str) -> Path:
        return self.checkpoint_dir / f"{name}@{version}.npz"

    def artifact_path(self, name: str, version: str) -> Path:
        """Snapshot location for quantized-plan deploys."""
        return self.checkpoint_dir / f"{name}@{version}.rplan"

    def record_deploy(self, name: str, version: str,
                      checkpoint: str | Path | None,
                      artifact: str | Path | None = None) -> dict:
        """Append one deploy event.

        ``checkpoint`` may be None when the model could not be
        snapshotted (restore will skip it, by name); ``artifact`` records
        a compiled-plan deploy (:func:`repro.qinfer.save_plan`), which
        restore replays through the artifact gate instead.
        """
        return self.journal.append(
            "deploy", name=name, version=version,
            checkpoint=None if checkpoint is None
            else str(Path(checkpoint).resolve()),
            artifact=None if artifact is None
            else str(Path(artifact).resolve()))

    # -- reading --------------------------------------------------------

    def active_entries(self) -> list[dict]:
        """Last-deployed entry per name, in first-deploy order."""
        latest: dict[str, dict] = {}
        for record in self.journal.events("deploy"):
            latest[record["name"]] = record
        return list(latest.values())


class RestoreReport:
    """What a warm restart restored — and what it refused to serve."""

    def __init__(self, manifest_dir: str | Path, journal_truncated: bool):
        self.manifest_dir = str(manifest_dir)
        self.journal_truncated = journal_truncated
        self.restored: list[dict] = []
        self.skipped: list[dict] = []

    def as_dict(self) -> dict:
        return {"manifest_dir": self.manifest_dir,
                "journal_truncated": self.journal_truncated,
                "restored": list(self.restored),
                "skipped": list(self.skipped)}

    def summary(self) -> str:
        lines = [f"restored {len(self.restored)} model(s) "
                 f"from {self.manifest_dir}"]
        for entry in self.restored:
            lines.append(f"  + {entry['name']}@{entry['version']} "
                         f"<- {entry['checkpoint']}")
        for entry in self.skipped:
            lines.append(f"  ! skipped {entry['name']}@{entry['version']}: "
                         f"{entry['reason']}")
        if self.journal_truncated:
            lines.append("  ! manifest journal had a corrupt tail "
                         "(later records dropped)")
        return "\n".join(lines)


def restore_registry(registry, manifest_dir: str | Path) -> RestoreReport:
    """Redeploy every manifest-active ``name@version`` into ``registry``.

    Each entry runs through :meth:`ModelRegistry.deploy` — the full
    compile + probe-validation gate — with journaling suppressed (the
    entry is already in the manifest). Failures never abort the restore:
    the entry is skipped and reported, because five healthy models
    serving beats zero while an operator hunts one bad checkpoint.
    """
    from ..io import CheckpointCorruptError
    from .registry import SwapValidationError

    manifest = ServeManifest(manifest_dir)
    report = RestoreReport(manifest_dir, manifest.truncated)
    for entry in manifest.active_entries():
        name, version = entry["name"], entry["version"]
        checkpoint = entry.get("checkpoint")
        artifact = entry.get("artifact")
        if checkpoint is None and artifact is None:
            report.skipped.append(
                {"name": name, "version": version, "checkpoint": None,
                 "reason": "no checkpoint was recorded for this deploy"})
            continue
        source = artifact if artifact is not None else checkpoint
        try:
            if artifact is not None:
                registry.deploy(name, version, artifact=artifact,
                                record=False)
            else:
                registry.deploy(name, version, checkpoint=checkpoint,
                                record=False)
        except (SwapValidationError, CheckpointCorruptError,
                FileNotFoundError, KeyError, ValueError) as exc:
            report.skipped.append(
                {"name": name, "version": version, "checkpoint": source,
                 "reason": f"{type(exc).__name__}: {exc}"})
            continue
        report.restored.append(
            {"name": name, "version": version, "checkpoint": source})
    return report
