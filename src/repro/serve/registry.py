"""Model registry: ``name@version`` routing, hot-swap, degrade-to-eager.

One registry holds every model a server instance exposes. Each *name* is
a serving line with exactly one **active** version; a request addresses
``"name"`` (whatever is active) or pins ``"name@version"`` (rejected once
that version is retired — the client is told, not silently rerouted).

**Hot-swap lifecycle** (``deploy`` on an existing name):

1. *load* — the replacement model arrives in-process (object or
   checkpoint path; checkpoints go through the checksummed
   :func:`repro.io.load_model`);
2. *validate* — the model is compiled and its compiled outputs are
   checked against its own eager forward on a probe batch
   (:func:`repro.infer.compile_model` with ``validate=True``); any
   divergence raises :class:`SwapValidationError` and the old version
   keeps serving, untouched;
3. *swap* — the line's active pointer moves to the new
   :class:`ModelVersion` under the line lock (new submissions route to
   the new engine from that instant);
4. *drain* — the old version's :class:`~repro.infer.BatchRunner` is
   closed, which processes everything already queued before releasing
   the thread, so every request admitted to the old engine still gets
   its answer. Zero requests are dropped by a swap.

**Degrade semantics** (the PR 5 supervisor story, in-process): engine
faults never take a request down with them. A ticket that fails with an
engine error is retried on the *eager* model, serially, under the line's
fallback lock (``fallbacks`` counted); once the batch worker has been
restarted or fallen back more times than the budgets allow, the line is
marked ``degraded`` and all later traffic goes straight to the serial
eager path — slower, bounded by admission control, but correct. Shedding
(rejecting) and serialising are the two degraded modes; dropping is not.
"""

from __future__ import annotations

import threading

import numpy as np

from ..clock import SYSTEM_CLOCK, Clock
from ..infer import BatchRunner, CompileValidationError, compile_model
from ..tensor import Tensor, inference_mode
from .scheduler import AdaptiveWindow, WindowConfig
from .shedding import AdmissionController, SheddingConfig

__all__ = ["ModelVersion", "DeployReport", "ModelRegistry",
           "NoSuchModelError", "SwapValidationError"]


class NoSuchModelError(KeyError):
    """The requested name (or pinned name@version) is not being served."""


class SwapValidationError(RuntimeError):
    """A candidate model failed probe validation; the old version stays."""


class ModelVersion:
    """One validated, compiled, batch-served incarnation of a model."""

    def __init__(self, name: str, version: str, model, engine,
                 runner: BatchRunner, window: AdaptiveWindow,
                 probe_max_abs_diff: float):
        self.name = name
        self.version = version
        self.model = model
        self.engine = engine
        self.runner = runner
        self.window = window
        self.probe_max_abs_diff = probe_max_abs_diff

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"

    def snapshot(self) -> dict:
        return {
            "ref": self.ref,
            "probe_max_abs_diff": self.probe_max_abs_diff,
            "batcher": dict(self.runner.stats),
            "window": self.window.snapshot(),
            "max_batch": self.engine.max_batch,
            "quantized": bool(getattr(self.engine, "quantized", False)),
        }


class _Line:
    """Per-name serving state that survives version swaps."""

    def __init__(self, admission: AdmissionController):
        self.current: ModelVersion | None = None
        self.admission = admission
        self.lock = threading.Lock()        # guards the active pointer
        self.eager_lock = threading.Lock()  # serialises fallback forwards
        self.degraded = False
        self.fallbacks = 0
        self.retired: list[str] = []


class DeployReport:
    """What ``deploy`` did: fresh line or validated hot-swap."""

    def __init__(self, name: str, version: str, swapped_from: str | None,
                 probe_max_abs_diff: float, drained_samples: int,
                 quantized: bool = False,
                 top1_agreement: float | None = None,
                 artifact: str | None = None):
        self.name = name
        self.version = version
        self.swapped_from = swapped_from
        self.probe_max_abs_diff = probe_max_abs_diff
        self.drained_samples = drained_samples
        self.quantized = quantized
        self.top1_agreement = top1_agreement
        self.artifact = artifact

    def as_dict(self) -> dict:
        return {"name": self.name, "version": self.version,
                "swapped_from": self.swapped_from,
                "probe_max_abs_diff": self.probe_max_abs_diff,
                "drained_samples": self.drained_samples,
                "quantized": self.quantized,
                "top1_agreement": self.top1_agreement,
                "artifact": self.artifact}


class ModelRegistry:
    """All serving lines of one server; deploys, routes, swaps, degrades."""

    def __init__(self, *, max_batch: int = 32,
                 window: WindowConfig | None = None,
                 shedding: SheddingConfig | None = None,
                 clock: Clock = SYSTEM_CLOCK,
                 max_worker_restarts: int = 3,
                 max_fallbacks: int = 8,
                 on_batch=None,
                 manifest_dir=None,
                 metrics=None):
        self.max_batch = int(max_batch)
        self.window_config = window or WindowConfig()
        self.shedding_config = shedding or SheddingConfig()
        self.clock = clock
        self.max_worker_restarts = int(max_worker_restarts)
        self.max_fallbacks = int(max_fallbacks)
        self.on_batch = on_batch    # callable(name, version, batch, outputs)
        self.metrics = metrics      # ServerMetrics, set by the server
        self._lines: dict[str, _Line] = {}
        self._registry_lock = threading.Lock()
        self.manifest = None
        if manifest_dir is not None:
            from .manifest import ServeManifest
            self.manifest = ServeManifest(manifest_dir)

    # -- deployment -----------------------------------------------------

    def deploy(self, name: str, version: str, *, model=None,
               checkpoint=None, artifact=None, probe=None, input_shape=None,
               probe_batch: int = 4, seed: int = 0,
               validate: bool = True, record: bool = True,
               quantize: str | None = None, calibrate=None,
               min_top1_agreement: float = 0.9) -> DeployReport:
        """Load → validate → swap → drain. Raises before touching traffic.

        Exactly one of ``model`` / ``checkpoint`` / ``artifact`` supplies
        the network. ``probe`` (a batched example input) anchors
        compilation and validation; without it one is generated from
        ``input_shape`` (or the checkpoint's recorded architecture, or the
        artifact's input shape) with ``seed``.

        **Quantized deploys** — ``quantize="int8"`` with a ``calibrate``
        loader compiles a native int8 engine
        (:func:`repro.infer.compile_model`); ``artifact=`` deploys a
        serialized plan (:func:`repro.qinfer.load_plan`) directly. Both
        pass the quantized validation gate: the engine must match the
        exact reference interpreter bitwise, and its probe-batch top-1
        predictions must agree with the float reference (the eager model,
        or the line's currently active engine for artifact deploys) on at
        least ``min_top1_agreement`` of samples — a regression raises
        :class:`SwapValidationError` and the old version keeps serving. A
        corrupted artifact is rejected the same way. Artifact deploys
        have no eager model, so the degrade-to-eager fallback path is
        unavailable for them (:meth:`eager_infer` raises).

        With a ``manifest_dir`` configured, every successful deploy is
        journaled (``record=False`` suppresses this — used when a warm
        restart replays the manifest) so ``repro serve --resume`` can
        rebuild the registry after a process death; in-memory ``model=``
        deploys are snapshotted into the manifest's checkpoint directory
        (quantized ones as plan artifacts) to make them restorable too.
        """
        if sum(x is not None for x in (model, checkpoint, artifact)) != 1:
            raise ValueError(
                "pass exactly one of model=, checkpoint=, or artifact=")
        if artifact is not None and quantize is not None:
            raise ValueError(
                "artifact deploys are already compiled; quantize= only "
                "applies to model=/checkpoint= deploys")
        top1 = None
        if artifact is not None:
            engine, probe, top1 = self._load_artifact(
                name, version, artifact, probe, probe_batch, seed,
                validate, min_top1_agreement)
            probe_diff = 0.0
        else:
            if checkpoint is not None:
                from ..io import load_model
                model = load_model(checkpoint)
            model.eval()
            probe = self._probe_batch(model, probe, input_shape,
                                      probe_batch, seed)
            try:
                engine = compile_model(model, probe,
                                       max_batch=self.max_batch,
                                       validate=validate,
                                       quantize=quantize,
                                       calibrate=calibrate)
            except CompileValidationError as exc:
                raise SwapValidationError(
                    f"{name}@{version} failed probe validation: "
                    f"{exc}") from exc
            probe_diff = self._probe_diff(model, engine, probe)
            if quantize is not None and validate:
                top1 = self._top1_agreement(
                    self._eager_probe(model, probe), engine.run(probe))
                if top1 < min_top1_agreement:
                    raise SwapValidationError(
                        f"{name}@{version} quantized accuracy gate failed: "
                        f"top-1 agreement {top1:.3f} < "
                        f"{min_top1_agreement:.3f} on the probe batch")

        window = AdaptiveWindow(self.window_config, max_batch=self.max_batch)
        incoming = ModelVersion(name, version, model, engine, runner=None,
                                window=window, probe_max_abs_diff=probe_diff)
        incoming.runner = BatchRunner(
            engine, max_batch=self.max_batch, max_wait=window.current(),
            clock=self.clock,
            on_batch=lambda batch, outputs, v=incoming:
                self._observe_batch(v, batch, outputs),
            on_observer_error=self._note_observer_fault)

        with self._registry_lock:
            line = self._lines.get(name)
            if line is None:
                line = self._lines[name] = _Line(
                    AdmissionController(self.shedding_config))
        with line.lock:
            outgoing, line.current = line.current, incoming
            if outgoing is not None:
                line.retired.append(outgoing.version)
            # A healthy replacement clears a degraded line: the whole
            # point of shipping a fixed checkpoint is to re-enter the
            # batched fast path.
            line.degraded = False
            line.fallbacks = 0
        drained = 0
        if outgoing is not None:
            outgoing.runner.close()     # processes everything already queued
            drained = outgoing.runner.stats["samples"]
        if self.manifest is not None and record:
            if artifact is not None:
                self.manifest.record_deploy(name, version, None,
                                            artifact=artifact)
            elif quantize is not None:
                # Snapshot the compiled plan, not the float weights: a
                # warm restart must restore the same int8 engine, not
                # silently requantize (calibration data is long gone).
                from ..qinfer.artifact import save_plan
                snapshot = self.manifest.artifact_path(name, version)
                save_plan(engine.plan, snapshot)
                self.manifest.record_deploy(name, version, None,
                                            artifact=snapshot)
            else:
                self._journal_deploy(name, version, model, checkpoint)
        return DeployReport(name, version,
                            outgoing.version if outgoing else None,
                            probe_diff, drained,
                            quantized=bool(engine.quantized),
                            top1_agreement=top1,
                            artifact=None if artifact is None
                            else str(artifact))

    def _load_artifact(self, name, version, artifact, probe, probe_batch,
                       seed, validate, min_top1_agreement):
        """Artifact half of the deploy gate: load, verify, accuracy-check."""
        from ..infer.runtime import InferenceEngine
        from ..qinfer.artifact import ArtifactCorruptError, load_plan
        try:
            plan = load_plan(artifact)
            engine = InferenceEngine(plan, max_batch=self.max_batch)
        except (ArtifactCorruptError, NotImplementedError,
                ValueError) as exc:
            raise SwapValidationError(
                f"{name}@{version} artifact rejected: {exc}") from exc
        if probe is None:
            rng = np.random.default_rng(seed)
            sample = tuple(plan.shapes[plan.input_id][1:])
            probe = rng.normal(size=(probe_batch, *sample)).astype(np.float32)
        else:
            probe = np.asarray(probe, dtype=np.float32)
        top1 = None
        if validate:
            out = engine.run(probe)
            if not np.all(np.isfinite(out)):
                raise SwapValidationError(
                    f"{name}@{version} artifact produced non-finite "
                    "outputs on the probe batch")
            if engine.quantized:
                from ..qinfer.reference import run_reference
                ref = run_reference(plan, probe)
                if not np.array_equal(out, ref):
                    raise SwapValidationError(
                        f"{name}@{version} quantized artifact diverges "
                        "from the exact reference interpreter (bitwise "
                        "equality required)")
            line = self._lines.get(name)
            active = line.current if line is not None else None
            if active is not None:
                top1 = self._top1_agreement(active.engine.run(probe), out)
                if top1 < min_top1_agreement:
                    raise SwapValidationError(
                        f"{name}@{version} artifact accuracy gate failed "
                        f"vs active {active.ref}: top-1 agreement "
                        f"{top1:.3f} < {min_top1_agreement:.3f}")
        return engine, probe, top1

    @staticmethod
    def _eager_probe(model, probe) -> np.ndarray:
        with inference_mode():
            return model(Tensor(probe)).data

    @staticmethod
    def _top1_agreement(reference: np.ndarray, candidate: np.ndarray
                        ) -> float:
        return float(np.mean(reference.argmax(axis=-1)
                             == candidate.argmax(axis=-1)))

    def _journal_deploy(self, name, version, model, checkpoint) -> None:
        """Make this deploy warm-restartable: snapshot if needed, journal."""
        if checkpoint is None:
            from ..io import save_model
            try:
                checkpoint = self.manifest.snapshot_path(name, version)
                save_model(model, checkpoint)
            except ValueError:
                # No architecture recipe — the model cannot be rebuilt
                # from weights. Journal the deploy anyway (the restore
                # report names it) rather than hiding it.
                checkpoint = None
        self.manifest.record_deploy(name, version, checkpoint)

    def _probe_batch(self, model, probe, input_shape, probe_batch, seed):
        if probe is not None:
            return np.asarray(probe, dtype=np.float32)
        if input_shape is None:
            arch = getattr(model, "arch", None) or {}
            size = arch.get("image_size")
            if size is None:
                raise ValueError("deploy needs probe=, input_shape=, or a "
                                 "checkpoint that records image_size")
            input_shape = (arch.get("in_channels", 3), size, size)
        rng = np.random.default_rng(seed)
        return rng.normal(size=(probe_batch, *input_shape)).astype(np.float32)

    def _probe_diff(self, model, engine, probe) -> float:
        with inference_mode():
            eager = model(Tensor(probe)).data
        return float(np.max(np.abs(engine.run(probe) - eager)))

    def _observe_batch(self, version: ModelVersion, batch, outputs) -> None:
        version.runner.max_wait = version.window.observe_batch(len(batch))
        if self.on_batch is not None:
            self.on_batch(version.name, version.version, batch, outputs)

    def _note_observer_fault(self, exc: BaseException) -> None:
        """A batch observer raised; the runner contained it — count it."""
        if self.metrics is not None:
            self.metrics.incr("observer_faults")

    # -- routing --------------------------------------------------------

    def resolve(self, ref: str) -> tuple[_Line, ModelVersion]:
        name, _, pinned = ref.partition("@")
        line = self._lines.get(name)
        if line is None or line.current is None:
            raise NoSuchModelError(f"no model {name!r} is being served")
        version = line.current
        if pinned and version.version != pinned:
            raise NoSuchModelError(
                f"{name}@{pinned} is not active "
                f"(active: {version.ref})")
        return line, version

    def models(self) -> dict[str, dict]:
        out = {}
        for name, line in self._lines.items():
            if line.current is None:
                continue
            out[name] = {
                "active": line.current.ref,
                "degraded": line.degraded,
                "fallbacks": line.fallbacks,
                "retired": list(line.retired),
                **line.current.snapshot(),
                "admission": line.admission.snapshot(),
            }
        return out

    # -- inference ------------------------------------------------------

    def submit(self, ref: str):
        """Admission-checked routing: ``(line, version)`` for one request.

        The caller owns the ticket lifecycle; admission has already been
        charged, so the caller must hand every outcome (including its own
        failures) back to ``line.admission.on_complete``.
        """
        return self.resolve(ref)

    def eager_infer(self, line: _Line, version: ModelVersion,
                    sample: np.ndarray) -> np.ndarray:
        """Serial eager forward — the degraded/fallback path."""
        if version.model is None:
            raise RuntimeError(
                f"{version.ref} was deployed from an artifact and has no "
                "eager model; the degrade-to-eager fallback is unavailable")
        with line.eager_lock:
            with inference_mode():
                out = version.model(Tensor(sample[None])).data[0]
        return np.array(out, copy=True)

    def note_fallback(self, line: _Line, version: ModelVersion) -> None:
        """Record one batched-path fault; maybe degrade the line."""
        line.fallbacks += 1
        if (line.fallbacks >= self.max_fallbacks
                or version.runner.stats["restarts"]
                >= self.max_worker_restarts):
            line.degraded = True

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        for line in self._lines.values():
            with line.lock:
                version, line.current = line.current, None
            if version is not None:
                version.runner.close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
