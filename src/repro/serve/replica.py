"""Replica worker processes: the compute tier behind the router.

One :class:`ReplicaSet` owns N worker *processes*, each running its own
:class:`~repro.serve.registry.ModelRegistry` (compiled engine + its own
:class:`~repro.infer.BatchRunner`) behind a private unix-domain NDJSON
socket. The asyncio frontend (:class:`~repro.serve.router.ReplicaRouter`)
dials those sockets and spreads traffic across them, so a crash, hang,
or GIL-bound compute spike in one replica costs 1/N capacity instead of
the whole service.

Supervision reuses the PR 5 machinery
(:mod:`repro.parallel.supervisor`): each replica stamps a heartbeat slot
in a shared ``mp.Array``; a parent-side watchdog SIGKILLs any replica
whose heartbeat goes stale, funnelling *every* fault — crash, freeze,
kill -9 — into one detection path (process death, seen by the router as
EOF on the replica socket). Respawns are bounded by a deterministic
:class:`~repro.resilience.retry.RetryPolicy` budget shared across the
set; once it is spent the router degrades to the in-process single-runner
path with ``stop_reason="replicas-degraded"`` instead of flapping.

Replica-owned filesystem artifacts (the socket directory, each
incarnation's socket and pid file) are ledgered with
:func:`repro.parallel.reaper.register_path`, so a SIGKILLed serve run
leaves nothing behind that the next run's orphan sweep won't reclaim.

Replica wire protocol (one JSON object per line, same framing as the
public server):

* ``{"op": "ping", "rid": r}`` → ``{"rid": r, "ok": true, "pong": true}``
  — the router's liveness probe; answered from a connection thread, so a
  wedged serving path (not just a dead process) fails to answer.
* ``{"op": "deploy", "rid": r, "name": ..., "version": ...,
  "checkpoint"|"artifact": path}`` — runs the full compile+probe-validate
  deploy gate of the replica's own registry, off-thread so probes keep
  flowing during a long compile. A rejected artifact answers
  ``error: "swap-rejected"`` and leaves the old version serving.
* ``{"op": "infer", "rid": r, "model": ..., "input": [...],
  "deadline_ms": ...}`` — batched inference; replies may arrive out of
  order (the ticket callback writes the response under a write lock).
* ``{"op": "stats"}`` — counters + retained latency samples for
  fleet-wide aggregation; ``{"op": "chaos"}`` (only when
  ``allow_chaos=True``) wedges the service for hang drills.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..parallel import reaper
from ..parallel.supervisor import WorkerEvent
from ..resilience.retry import RetryPolicy

__all__ = ["ReplicaSpec", "ReplicaConfig", "ReplicaSet"]


@dataclass(frozen=True)
class ReplicaSpec:
    """One ``name@version`` a replica must serve, and where to load it."""

    name: str
    version: str
    checkpoint: str | None = None
    artifact: str | None = None

    def deploy_payload(self) -> dict:
        payload = {"op": "deploy", "name": self.name, "version": self.version}
        if self.checkpoint is not None:
            payload["checkpoint"] = str(self.checkpoint)
        if self.artifact is not None:
            payload["artifact"] = str(self.artifact)
        return payload

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"


@dataclass(frozen=True)
class ReplicaConfig:
    """Sizing, supervision, and routing knobs of the replica tier."""

    replicas: int = 2
    max_batch: int = 8                  # per-replica engine batch
    socket_dir: str | None = None       # default: fresh ledgered tmpdir
    heartbeat_s: float = 0.05           # replica stamp + watchdog scan
    stale_after_s: float = 2.0          # heartbeat age ⇒ SIGKILL
    start_deadline_s: float = 30.0      # socket connect budget per spawn
    deploy_timeout_s: float = 120.0     # compile+validate budget
    probe_interval_s: float = 0.25      # router liveness ping period
    probe_timeout_s: float = 2.0        # unanswered ping ⇒ SIGKILL
    max_respawns: int = 3               # set-wide respawn budget
    respawn_base_delay_s: float = 0.05  # RetryPolicy backoff knobs
    respawn_max_delay_s: float = 1.0
    respawn_seed: int = 0
    max_dispatch_retries: int = 2       # re-dispatches per request
    hedge_after_ms: float | None = None  # None ⇒ hedging off
    breaker_failures: int = 3           # per-replica circuit breaker
    breaker_cooldown_s: float = 0.5
    request_timeout_s: float = 30.0     # router-side wait per request
    drain_poll_s: float = 0.01          # rolling-deploy drain poll
    rolling_drain_timeout_s: float = 10.0
    allow_chaos: bool = False           # enable the "chaos" op (drills)
    engine_delay_ms: float = 0.0        # slow the engine down (drills)

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(max_attempts=self.max_respawns + 1,
                           base_delay=self.respawn_base_delay_s,
                           factor=2.0, max_delay=self.respawn_max_delay_s,
                           jitter=0.1, seed=self.respawn_seed)


# ---------------------------------------------------------------------------
# replica process body
# ---------------------------------------------------------------------------


class _DelayedEngine:
    """Chaos shim: a compiled engine with an artificial per-run delay."""

    def __init__(self, engine, delay_s: float):
        self._engine = engine
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def run(self, batch):
        time.sleep(self._delay_s)
        return self._engine.run(batch)


class _ReplicaService:
    """Everything that runs *inside* one replica process."""

    def __init__(self, replica_id: int, config: ReplicaConfig):
        # Imported here (not module top level) purely for clarity that
        # these objects live in the child: each replica owns a private
        # registry/metrics pair, never shared memory with the parent.
        from .metrics import ServerMetrics
        from .registry import ModelRegistry
        self.replica_id = replica_id
        self.config = config
        self.metrics = ServerMetrics()
        self.registry = ModelRegistry(max_batch=config.max_batch,
                                      metrics=self.metrics)
        self._deploy_lock = threading.Lock()
        self._stop = threading.Event()
        self._wedged = False            # chaos: hang the serving path

    # -- socket loop ----------------------------------------------------

    def serve(self, socket_path: str) -> None:
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            os.unlink(socket_path)
        except FileNotFoundError:
            pass
        listener.bind(socket_path)
        listener.listen(8)
        while not self._stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                break
            threading.Thread(target=self._serve_conn, args=(conn,),
                             daemon=True,
                             name=f"repro-replica-{self.replica_id}").start()
        listener.close()
        self.registry.close()

    def _serve_conn(self, conn: socket.socket) -> None:
        reader = conn.makefile("rb")
        write_lock = threading.Lock()

        def send(payload: dict) -> None:
            data = json.dumps(payload).encode("utf-8") + b"\n"
            try:
                with write_lock:
                    conn.sendall(data)
            except OSError:
                pass                    # peer gone; router re-dispatches

        try:
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                while self._wedged and not self._stop.is_set():
                    time.sleep(0.01)    # chaos: probes go unanswered
                try:
                    msg = json.loads(line)
                except ValueError:
                    send({"ok": False, "error": "bad-request",
                          "message": "malformed JSON line"})
                    continue
                if not self._dispatch(msg, send):
                    break
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, msg: dict, send) -> bool:
        op = msg.get("op", "infer")
        rid = msg.get("rid")
        if op == "ping":
            send({"rid": rid, "ok": True, "pong": True,
                  "replica": self.replica_id})
        elif op == "infer":
            self._infer(msg, send)
        elif op == "deploy":
            # Off-thread: a long compile must not block probe replies on
            # this connection (a false hang-kill mid-deploy would defeat
            # the rolling deploy's N−1 capacity guarantee).
            threading.Thread(target=self._deploy, args=(msg, send),
                             daemon=True).start()
        elif op == "stats":
            send({"rid": rid, "ok": True, "stats": self._stats()})
        elif op == "chaos" and self.config.allow_chaos:
            self._wedged = bool(msg.get("wedged", True))
            send({"rid": rid, "ok": True, "wedged": self._wedged})
        elif op == "shutdown":
            send({"rid": rid, "ok": True, "bye": True})
            self._stop.set()
            return False
        else:
            send({"rid": rid, "ok": False, "error": "unknown-op",
                  "message": f"unknown op {op!r}"})
        return True

    # -- ops ------------------------------------------------------------

    def _deploy(self, msg: dict, send) -> None:
        from .registry import SwapValidationError
        rid = msg.get("rid")
        name, version = msg.get("name"), msg.get("version")
        if not name or not version:
            send({"rid": rid, "ok": False, "error": "bad-request",
                  "message": "deploy needs name and version"})
            return
        try:
            with self._deploy_lock:
                report = self.registry.deploy(
                    name, version, checkpoint=msg.get("checkpoint"),
                    artifact=msg.get("artifact"))
                if self.config.engine_delay_ms > 0:
                    _, active = self.registry.resolve(name)
                    active.runner.engine = active.engine = _DelayedEngine(
                        active.engine, self.config.engine_delay_ms / 1e3)
        except Exception as exc:  # noqa: BLE001 - answer, don't die
            kind = ("swap-rejected" if isinstance(exc, SwapValidationError)
                    else "deploy-failed")
            send({"rid": rid, "ok": False, "error": kind,
                  "message": f"{type(exc).__name__}: {exc}"})
            return
        send({"rid": rid, "ok": True, "swap": report.as_dict()})

    def _infer(self, msg: dict, send) -> None:
        from ..infer.batcher import DeadlineExpired
        from .registry import NoSuchModelError
        rid = msg.get("rid")
        ref = msg.get("model")
        if not ref or "input" not in msg:
            send({"rid": rid, "ok": False, "error": "bad-request",
                  "message": "infer needs model and input"})
            return
        start = time.monotonic()
        try:
            _, version = self.registry.resolve(ref)
        except NoSuchModelError as exc:
            send({"rid": rid, "ok": False, "error": "no-such-model",
                  "message": str(exc.args[0])})
            return
        try:
            sample = np.asarray(msg["input"], dtype=np.float32)
        except (TypeError, ValueError) as exc:
            send({"rid": rid, "ok": False, "error": "bad-request",
                  "message": str(exc)})
            return
        deadline_ms = msg.get("deadline_ms")
        deadline = (None if deadline_ms is None
                    else start + float(deadline_ms) / 1e3)
        try:
            ticket = version.runner.submit(sample, deadline=deadline)
        except RuntimeError as exc:     # runner closed (shutdown race)
            self.metrics.incr("errors")
            send({"rid": rid, "ok": False, "error": "replica-fault",
                  "message": str(exc)})
            return

        def resolved(t) -> None:
            if t._error is not None:
                if isinstance(t._error, DeadlineExpired):
                    self.metrics.incr("expired")
                    send({"rid": rid, "ok": False, "error": "expired",
                          "message": str(t._error)})
                else:
                    self.metrics.incr("errors")
                    send({"rid": rid, "ok": False, "error": "replica-fault",
                          "message": f"{type(t._error).__name__}: "
                                     f"{t._error}"})
                return
            latency_ms = (time.monotonic() - start) * 1e3
            self.metrics.record_completion(version.ref, latency_ms)
            send({"rid": rid, "ok": True, "model": version.ref,
                  "output": t._value.tolist(),
                  "latency_ms": round(latency_ms, 3),
                  "replica": self.replica_id})

        ticket.add_done_callback(resolved)

    def _stats(self) -> dict:
        return {
            "replica": self.replica_id,
            "pid": os.getpid(),
            "counters": dict(self.metrics.counters),
            "latency": self.metrics.snapshot()["latency"],
            "latency_samples": self.metrics.latency_samples(),
            "models": {name: info["active"]
                       for name, info in self.registry.models().items()},
        }


def _replica_main(replica_id: int, socket_path: str, heartbeats,
                  config: ReplicaConfig) -> None:
    """Process entry point: heartbeat thread + threaded socket service."""
    service = _ReplicaService(replica_id, config)

    def beat() -> None:
        while not service._stop.is_set():
            heartbeats[replica_id] = time.monotonic()
            service._stop.wait(config.heartbeat_s)

    threading.Thread(target=beat, daemon=True,
                     name=f"repro-replica-{replica_id}-heartbeat").start()
    service.serve(socket_path)


# ---------------------------------------------------------------------------
# parent-side process management
# ---------------------------------------------------------------------------


class ReplicaHandle:
    """Parent-side view of one replica seat (survives respawns)."""

    def __init__(self, replica_id: int):
        self.replica_id = replica_id
        self.generation = 0
        self.proc: mp.process.BaseProcess | None = None
        self.socket_path: Path | None = None
        self.pid_path: Path | None = None
        self.kill_reason: str | None = None
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class ReplicaSet:
    """Spawns, watches, SIGKILLs, and respawns the replica processes.

    Pure process lifecycle — routing and request state live in
    :class:`~repro.serve.router.ReplicaRouter`. The heartbeat watchdog
    funnels freezes into process death (SIGKILL), which the router
    observes as EOF on the replica socket; :meth:`respawn` enforces the
    set-wide bounded respawn budget with deterministic
    :class:`~repro.resilience.retry.RetryPolicy` backoff.
    """

    def __init__(self, config: ReplicaConfig | None = None, *,
                 on_event=None):
        self.config = config or ReplicaConfig()
        if self.config.replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.on_event = on_event
        self.events: list[WorkerEvent] = []
        self.respawns_used = 0
        self._retry = self.config.retry_policy()
        self._lock = threading.Lock()
        self._closing = False
        reaper.sweep_orphans()          # reclaim a previous run's leavings
        if self.config.socket_dir is None:
            self._dir = Path(tempfile.mkdtemp(prefix="repro-replicas-"))
            self._own_dir = True
        else:
            self._dir = Path(self.config.socket_dir)
            self._dir.mkdir(parents=True, exist_ok=True)
            self._own_dir = False
        reaper.register_path(self._dir)
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._heartbeats = self._ctx.Array("d", self.config.replicas,
                                           lock=False)
        self.handles = [ReplicaHandle(i) for i in range(self.config.replicas)]
        for handle in self.handles:
            self._spawn(handle)
        self._watchdog_halt = threading.Event()
        self._watchdog = threading.Thread(target=self._watch, daemon=True,
                                          name="repro-replica-watchdog")
        self._watchdog.start()

    # -- events ---------------------------------------------------------

    def emit(self, kind: str, replica_id: int, *, attempt: int = 0,
             detail: str = "") -> None:
        event = WorkerEvent(kind=kind, worker_id=replica_id,
                            attempt=attempt, detail=detail)
        self.events.append(event)
        if self.on_event is not None:
            try:
                self.on_event(event)
            except Exception:  # noqa: BLE001 - observer, not ours
                pass

    # -- spawning -------------------------------------------------------

    def _seat_paths(self, handle: ReplicaHandle) -> tuple[Path, Path]:
        stem = f"r{handle.replica_id}.{handle.generation}"
        return self._dir / f"{stem}.sock", self._dir / f"{stem}.pid"

    def _spawn(self, handle: ReplicaHandle) -> None:
        handle.generation += 1
        handle.kill_reason = None
        sock, pid_file = self._seat_paths(handle)
        reaper.register_path(sock)
        reaper.register_path(pid_file)
        handle.socket_path, handle.pid_path = sock, pid_file
        self._heartbeats[handle.replica_id] = time.monotonic()
        handle.proc = self._ctx.Process(
            target=_replica_main,
            args=(handle.replica_id, str(sock), self._heartbeats,
                  self.config),
            daemon=True, name=f"repro-replica-{handle.replica_id}")
        handle.proc.start()
        pid_file.write_text(str(handle.proc.pid))

    def _scrap_seat(self, handle: ReplicaHandle) -> None:
        """Remove (and unledger) one incarnation's socket + pid file."""
        for path in (handle.socket_path, handle.pid_path):
            if path is None:
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            reaper.unregister_path(path)

    # -- supervision ----------------------------------------------------

    def _watch(self) -> None:
        while not self._watchdog_halt.wait(self.config.heartbeat_s):
            now = time.monotonic()
            for handle in self.handles:
                if not handle.alive:
                    continue
                age = now - self._heartbeats[handle.replica_id]
                if age > self.config.stale_after_s:
                    self.kill(handle.replica_id,
                              reason=f"heartbeat stale for {age:.2f}s "
                                     f"(limit {self.config.stale_after_s}s)",
                              kind="stale")

    def kill(self, replica_id: int, reason: str, kind: str = "hang") -> None:
        """SIGKILL one replica; the router sees EOF and takes over."""
        handle = self.handles[replica_id]
        if handle.kill_reason is None:
            handle.kill_reason = reason
        self.emit(kind, replica_id, detail=reason)
        if handle.proc is not None and handle.proc.is_alive():
            handle.proc.kill()

    def respawn(self, replica_id: int) -> bool:
        """Replace a dead replica, within the set-wide budget.

        Blocking (RetryPolicy backoff sleep + process start) — callers on
        an event loop run it via ``asyncio.to_thread``. Returns False
        once the budget is spent; the caller is expected to degrade.
        """
        handle = self.handles[replica_id]
        with self._lock:
            if self._closing:
                return False
            if self.respawns_used >= self.config.max_respawns:
                self.emit("degrade", replica_id, attempt=self.respawns_used,
                          detail="replica respawn budget exhausted "
                                 f"({self.config.max_respawns})")
                return False
            attempt = self.respawns_used
            self.respawns_used += 1
        time.sleep(self._retry.delay(attempt))
        with self._lock:
            if self._closing:
                return False
            if handle.proc is not None:
                handle.proc.join(timeout=5)
            self._scrap_seat(handle)
            self._spawn(handle)
            handle.restarts += 1
        self.emit("respawn", replica_id, attempt=attempt + 1,
                  detail=f"generation {handle.generation} "
                         f"(reason: {handle.kill_reason})")
        return True

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
        self._watchdog_halt.set()
        self._watchdog.join(timeout=5)
        for handle in self.handles:
            if handle.proc is not None and handle.proc.is_alive():
                handle.proc.kill()
            if handle.proc is not None:
                handle.proc.join(timeout=5)
            self._scrap_seat(handle)
        if self._own_dir:
            try:
                self._dir.rmdir()
            except OSError:
                pass
        reaper.unregister_path(self._dir)

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
