"""Synthetic CIFAR substitute.

The paper evaluates on CIFAR-10/100, which cannot be downloaded in this
offline environment. This module provides a deterministic, seeded generator
of class-structured RGB images that preserves the property the class-aware
criterion depends on: *images of different classes excite different filter
paths* (Sec. II-B of the paper, citing critical-data-routing-path work).

Each class owns a template composed of
  - a small set of oriented plane waves (class-specific spectral content,
    which convolutional filters of different orientations pick up), and
  - a Gaussian intensity blob at a class-specific location (localised
    spatial structure).

A sample is the class template under a random amplitude, a small random
translation, an optional horizontal flip, plus i.i.d. Gaussian pixel noise.
With the default noise level a small CNN reaches high accuracy while the
task is not linearly separable, so pruning dynamics (accuracy drop and
recovery under fine-tuning) behave qualitatively like on CIFAR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import TensorDataset

__all__ = ["SyntheticConfig", "SyntheticImageClassification", "make_cifar_like"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic classification task.

    Attributes
    ----------
    num_classes:
        10 stands in for CIFAR-10, 100 for CIFAR-100.
    image_size:
        Spatial resolution; the paper's 32 is supported, benchmarks default
        to 16 to fit the CPU budget.
    samples_per_class:
        Training samples generated per class.
    channels:
        Image channels (3 = RGB, like CIFAR).
    noise:
        Standard deviation of additive Gaussian pixel noise.
    waves_per_class:
        Number of plane-wave components per class template.
    max_shift:
        Maximum circular translation (pixels) applied per sample.
    seed:
        Master seed; the template bank depends only on
        ``(seed, num_classes, image_size, channels)`` so train and test
        splits share templates.
    """

    num_classes: int = 10
    image_size: int = 16
    samples_per_class: int = 100
    channels: int = 3
    noise: float = 0.25
    waves_per_class: int = 3
    max_shift: int = 2
    seed: int = 0


def _class_template(cfg: SyntheticConfig, class_index: int) -> np.ndarray:
    """Deterministic template for one class, unit-normalised per channel."""
    rng = np.random.default_rng((cfg.seed + 1) * 100_003 + class_index)
    size = cfg.image_size
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    template = np.zeros((cfg.channels, size, size), dtype=np.float64)
    for ch in range(cfg.channels):
        for _ in range(cfg.waves_per_class):
            theta = rng.uniform(0, np.pi)
            freq = rng.uniform(1.0, size / 3.0)
            phase = rng.uniform(0, 2 * np.pi)
            amp = rng.uniform(0.5, 1.0)
            wave = np.sin(2 * np.pi * freq / size
                          * (np.cos(theta) * xx + np.sin(theta) * yy) + phase)
            template[ch] += amp * wave
    # Class-specific Gaussian blob (shared across channels, random sign).
    cy, cx = rng.uniform(size * 0.2, size * 0.8, size=2)
    sigma = rng.uniform(size * 0.1, size * 0.25)
    blob = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma ** 2))
    template += rng.choice([-1.5, 1.5]) * blob[None]
    # Normalise each channel to zero mean / unit std so no class is
    # trivially separable by brightness alone.
    template -= template.mean(axis=(1, 2), keepdims=True)
    template /= template.std(axis=(1, 2), keepdims=True) + 1e-8
    return template.astype(np.float32)


class SyntheticImageClassification(TensorDataset):
    """Materialised synthetic dataset (see module docstring).

    Parameters
    ----------
    cfg:
        Task parameters.
    train:
        Selects the split; train and test differ only in the per-sample
        randomness (templates are shared), mirroring a real dataset split.
    """

    def __init__(self, cfg: SyntheticConfig, train: bool = True):
        self.cfg = cfg
        self.train = train
        templates = np.stack([_class_template(cfg, c) for c in range(cfg.num_classes)])
        split_seed = cfg.seed * 2 + (0 if train else 1)
        rng = np.random.default_rng(1_000_000 + split_seed)
        n_total = cfg.num_classes * cfg.samples_per_class
        images = np.empty((n_total, cfg.channels, cfg.image_size, cfg.image_size),
                          dtype=np.float32)
        labels = np.empty(n_total, dtype=np.intp)
        i = 0
        for c in range(cfg.num_classes):
            for _ in range(cfg.samples_per_class):
                sample = templates[c] * rng.uniform(0.7, 1.3)
                if cfg.max_shift > 0:
                    dy, dx = rng.integers(-cfg.max_shift, cfg.max_shift + 1, size=2)
                    sample = np.roll(sample, (int(dy), int(dx)), axis=(1, 2))
                if rng.random() < 0.5:
                    sample = sample[:, :, ::-1]
                sample = sample + rng.normal(0.0, cfg.noise, size=sample.shape)
                images[i] = sample
                labels[i] = c
                i += 1
        super().__init__(images, labels)
        self.templates = templates


def make_cifar_like(num_classes: int = 10, image_size: int = 16,
                    samples_per_class: int = 100, noise: float = 0.25,
                    seed: int = 0) -> tuple[SyntheticImageClassification,
                                            SyntheticImageClassification]:
    """Convenience constructor returning ``(train, test)`` splits.

    ``num_classes=10`` stands in for CIFAR-10 and ``num_classes=100`` for
    CIFAR-100 throughout the benchmarks.
    """
    cfg = SyntheticConfig(num_classes=num_classes, image_size=image_size,
                          samples_per_class=samples_per_class, noise=noise,
                          seed=seed)
    test_cfg = SyntheticConfig(num_classes=num_classes, image_size=image_size,
                               samples_per_class=max(samples_per_class // 5, 10),
                               noise=noise, seed=seed)
    return (SyntheticImageClassification(cfg, train=True),
            SyntheticImageClassification(test_cfg, train=False))
