"""Batch-level data augmentation transforms.

Each transform is a callable ``(batch, rng) -> batch`` operating on
``(B, C, H, W)`` arrays, composable with :class:`Compose` and pluggable into
:class:`repro.data.DataLoader`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Compose", "RandomHorizontalFlip", "RandomCrop", "Normalize",
           "GaussianNoise"]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]):
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for t in self.transforms:
            batch = t(batch, rng)
        return batch


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        self.p = p

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flip = rng.random(len(batch)) < self.p
        out = batch.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomCrop:
    """Zero-pad by ``padding`` then crop back to the original size.

    The standard CIFAR augmentation (pad 4, crop 32).
    """

    def __init__(self, padding: int = 2):
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = padding

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return batch
        b, c, h, w = batch.shape
        p = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (p, p), (p, p)))
        out = np.empty_like(batch)
        offsets = rng.integers(0, 2 * p + 1, size=(b, 2))
        for i, (dy, dx) in enumerate(offsets):
            out[i] = padded[i, :, dy:dy + h, dx:dx + w]
        return out


class Normalize:
    """Channel-wise standardisation with fixed statistics."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)
        if np.any(self.std == 0):
            raise ValueError("std must be non-zero")

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (batch - self.mean) / self.std


class GaussianNoise:
    """Additive pixel noise, occasionally useful as extra regularisation."""

    def __init__(self, sigma: float = 0.05):
        self.sigma = sigma

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0:
            return batch
        return batch + rng.normal(0.0, self.sigma, size=batch.shape).astype(batch.dtype)
