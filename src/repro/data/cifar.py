"""Loaders for the real CIFAR-10/100 files (when locally available).

This environment cannot download datasets, so benchmarks run on the
synthetic substitute — but a user of this library with the standard
`cifar-10-batches-py` / `cifar-100-python` directories on disk can run the
full reproduction on the paper's actual data. These loaders read the
original pickle format (no torchvision needed) into
:class:`~repro.data.TensorDataset`.

Expected layouts (as distributed by cs.toronto.edu):

* CIFAR-10: ``data_batch_1..5`` + ``test_batch``
* CIFAR-100: ``train`` + ``test``
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from .dataset import TensorDataset

__all__ = ["load_cifar10", "load_cifar100", "CIFAR_MEAN", "CIFAR_STD"]

# Channel statistics of CIFAR-10 training data (widely published values).
CIFAR_MEAN = (0.4914, 0.4822, 0.4465)
CIFAR_STD = (0.2470, 0.2435, 0.2616)


def _read_batch(path: Path, label_key: bytes) -> tuple[np.ndarray, np.ndarray]:
    if not path.exists():
        raise FileNotFoundError(
            f"{path} not found — download the CIFAR python archive and "
            "extract it first")
    with open(path, "rb") as fh:
        entry = pickle.load(fh, encoding="bytes")
    data = np.asarray(entry[b"data"], dtype=np.uint8)
    labels = np.asarray(entry[label_key], dtype=np.intp)
    images = data.reshape(-1, 3, 32, 32).astype(np.float32) / 255.0
    return images, labels


def _normalise(images: np.ndarray) -> np.ndarray:
    mean = np.asarray(CIFAR_MEAN, dtype=np.float32).reshape(1, 3, 1, 1)
    std = np.asarray(CIFAR_STD, dtype=np.float32).reshape(1, 3, 1, 1)
    return (images - mean) / std


def load_cifar10(root: str | Path, train: bool = True,
                 normalise: bool = True) -> TensorDataset:
    """Load CIFAR-10 from a ``cifar-10-batches-py`` directory.

    Parameters
    ----------
    root:
        Directory containing ``data_batch_*`` / ``test_batch``.
    train:
        Training split (five batches) or the test batch.
    normalise:
        Standardise with the canonical channel statistics.
    """
    root = Path(root)
    if train:
        parts = [_read_batch(root / f"data_batch_{i}", b"labels")
                 for i in range(1, 6)]
        images = np.concatenate([p[0] for p in parts])
        labels = np.concatenate([p[1] for p in parts])
    else:
        images, labels = _read_batch(root / "test_batch", b"labels")
    if normalise:
        images = _normalise(images)
    return TensorDataset(images, labels)


def load_cifar100(root: str | Path, train: bool = True,
                  normalise: bool = True) -> TensorDataset:
    """Load CIFAR-100 (fine labels) from a ``cifar-100-python`` directory."""
    root = Path(root)
    name = "train" if train else "test"
    images, labels = _read_batch(root / name, b"fine_labels")
    if normalise:
        images = _normalise(images)
    return TensorDataset(images, labels)
