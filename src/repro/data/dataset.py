"""Dataset and batch-loading abstractions.

The interface intentionally mirrors ``torch.utils.data`` so the training
and pruning code reads like the reference implementation the paper authors
would have written, while remaining pure numpy.
"""

from __future__ import annotations

import queue as queue_mod
import threading
from typing import Callable, Iterator

import numpy as np

__all__ = ["Dataset", "TensorDataset", "Subset", "DataLoader",
           "per_class_images", "per_class_indices", "EmptyDatasetError"]


class EmptyDatasetError(ValueError):
    """A computation received a dataset (or class slice) with no samples.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers
    keep working; the dedicated type lets evaluation and importance code
    fail with an explicit message instead of a silent divide-by-zero.
    """


class Dataset:
    """Abstract map-style dataset of ``(image, label)`` pairs."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        raise NotImplementedError

    @property
    def labels(self) -> np.ndarray:
        """Integer label of every item; enables fast per-class sampling."""
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset over pre-materialised arrays ``images (N,C,H,W)``/``labels (N,)``."""

    def __init__(self, images: np.ndarray, labels: np.ndarray):
        if len(images) != len(labels):
            raise ValueError(
                f"images ({len(images)}) and labels ({len(labels)}) disagree on length")
        self.images = np.asarray(images, dtype=np.float32)
        self._labels = np.asarray(labels, dtype=np.intp)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self._labels[index])

    @property
    def labels(self) -> np.ndarray:
        return self._labels


class Subset(Dataset):
    """View of a dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: np.ndarray):
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.intp)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.dataset[int(self.indices[index])]

    @property
    def labels(self) -> np.ndarray:
        return self.dataset.labels[self.indices]


class DataLoader:
    """Mini-batch iterator with optional shuffling and per-batch transforms.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Number of samples per batch (last batch may be smaller unless
        ``drop_last``).
    shuffle:
        Reshuffle indices at the start of every epoch, using a generator
        seeded once at construction so runs are reproducible.
    transform:
        Optional callable applied to each *batch* of images
        ``(B, C, H, W) -> (B, C, H, W)``; data augmentation lives here.
    prefetch:
        Assemble batches on a background thread, double-buffered (at most
        two batches in flight), so indexing/stacking/augmentation overlaps
        with the consumer's compute. The batch *stream* is unchanged — all
        randomness still draws from the loader's single generator in the
        same order, so prefetched and non-prefetched iteration yield
        bit-identical batches. The trainer turns this on by default;
        ``prefetch=False`` is the escape hatch.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32,
                 shuffle: bool = False, seed: int = 0, drop_last: bool = False,
                 transform: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
                 prefetch: bool = False):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self.prefetch = prefetch
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if self.prefetch:
            return self._iter_prefetch()
        return self._iter_serial()

    def _iter_serial(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            images = np.stack([self.dataset[int(i)][0] for i in idx])
            labels = np.array([self.dataset[int(i)][1] for i in idx], dtype=np.intp)
            if self.transform is not None:
                images = self.transform(images, self._rng)
            yield images, labels

    def _iter_prefetch(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Double-buffered iteration: one producer thread, bounded queue.

        The producer runs the ordinary serial iterator (sole user of the
        loader's RNG, so determinism is untouched) and pushes into a
        2-slot queue. Exceptions are forwarded to the consumer; breaking
        out of the loop early sets a stop event the producer polls on
        every blocked put, so abandoned iterations never leak the thread.
        """
        out: queue_mod.Queue = queue_mod.Queue(maxsize=2)
        stop = threading.Event()

        def put(item) -> bool:
            while not stop.is_set():
                try:
                    out.put(item, timeout=0.05)
                    return True
                except queue_mod.Full:
                    continue
            return False

        def produce() -> None:
            try:
                for batch in self._iter_serial():
                    if not put(("batch", batch)):
                        return
                put(("done", None))
            except BaseException as exc:  # noqa: BLE001 - forwarded
                put(("error", exc))

        thread = threading.Thread(target=produce, daemon=True,
                                  name="repro-prefetch")
        thread.start()
        try:
            while True:
                kind, payload = out.get()
                if kind == "batch":
                    yield payload
                elif kind == "error":
                    raise payload
                else:
                    break
        finally:
            stop.set()
            thread.join(timeout=5.0)


def per_class_indices(dataset: Dataset, class_index: int, count: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Indices of ``count`` randomly selected images of one class.

    The index-level version of :func:`per_class_images`; callers that
    stage images into shared memory use it to avoid an intermediate stack.
    """
    if len(dataset) == 0:
        raise EmptyDatasetError(
            "per_class_images received an empty dataset — cannot sample "
            f"images of class {class_index}")
    candidates = np.flatnonzero(dataset.labels == class_index)
    if len(candidates) == 0:
        raise EmptyDatasetError(
            f"dataset holds no samples of class {class_index}; every class "
            "needs at least one training image for per-class sampling")
    return rng.choice(candidates, size=min(count, len(candidates)),
                      replace=False)


def per_class_images(dataset: Dataset, class_index: int, count: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Randomly select ``count`` training images of one class.

    This is the sampling step of the paper's importance evaluation
    (Sec. III-B / IV: "10 images for each class were randomly selected in
    the training datasets").
    """
    chosen = per_class_indices(dataset, class_index, count, rng)
    return np.stack([dataset[int(i)][0] for i in chosen])
