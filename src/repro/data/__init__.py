"""Datasets, loaders, the synthetic CIFAR substitute, and real-CIFAR files."""

from .cifar import CIFAR_MEAN, CIFAR_STD, load_cifar10, load_cifar100
from .dataset import (DataLoader, Dataset, EmptyDatasetError, Subset,
                      TensorDataset, per_class_images, per_class_indices)
from .synthetic import (SyntheticConfig, SyntheticImageClassification,
                        make_cifar_like)
from .transforms import (Compose, GaussianNoise, Normalize, RandomCrop,
                         RandomHorizontalFlip)

__all__ = [
    "Dataset", "TensorDataset", "Subset", "DataLoader", "per_class_images",
    "per_class_indices",
    "EmptyDatasetError",
    "SyntheticConfig", "SyntheticImageClassification", "make_cifar_like",
    "Compose", "RandomHorizontalFlip", "RandomCrop", "Normalize",
    "GaussianNoise",
    "load_cifar10", "load_cifar100", "CIFAR_MEAN", "CIFAR_STD",
]
