"""Training-side benchmark lane: parallel scoring and fused fine-tuning.

Two workloads, mirroring the two halves of :mod:`repro.parallel`:

* **scoring** — the per-class Taylor importance evaluation, serial
  (:class:`~repro.core.importance.ImportanceEvaluator` loop) vs fanned
  across a persistent worker pool. The parallel path must return a
  bit-identical :class:`~repro.core.importance.ImportanceReport`; the
  benchmark *asserts* this before reporting any timing.
* **finetune** — one training epoch under the modified objective, in
  three flavours: the autograd penalty graph, the fused closed-form
  regularizer gradients, and the sharded data-parallel loop.

Timing is best-of-``repeats`` with a warmup pass (the warmup also
amortises worker-pool start-up into session setup, where it belongs —
the pool is persistent across evaluations in real runs). Entry point:
:func:`run_bench`, shared by ``repro train-bench`` and the standalone
``benchmarks/bench_train.py`` script that refreshes ``BENCH_train.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

__all__ = ["BENCH_CONFIG", "SMOKE_CONFIG", "run_bench", "write_bench",
           "format_table"]


# The acceptance workload: resnet20 on a 100-class task, M=10 images per
# class — enough classes that per-class evaluation dominates pool
# overhead, and images sized so the benchmark stays in CI budget on a
# one-CPU container (the fused path's win — amortising 100 small
# per-class passes into a handful of large ones — is what is measured).
BENCH_CONFIG: dict = {
    "scoring": dict(model="resnet20", num_classes=100, image_size=8,
                    width=0.25, images_per_class=10, samples_per_class=12),
    "finetune": dict(model="vgg11", num_classes=10, image_size=12,
                     width=0.5, samples_per_class=16, batch_size=32),
}

# CI smoke variant: tiny everything, still exercises every path.
SMOKE_CONFIG: dict = {
    "scoring": dict(model="vgg11", num_classes=6, image_size=8,
                    width=0.25, images_per_class=4, samples_per_class=6),
    "finetune": dict(model="vgg11", num_classes=3, image_size=8,
                     width=0.25, samples_per_class=8, batch_size=8),
}


# Parent-side per-step overhead of the pre-bucketing sharded loop on the
# 1-core reference container (ms/step on the full finetune workload):
# full weight broadcast 17.315 + blocking wait on worker publication
# 13.300 + allocating monolithic reduction 20.354. The overlapped
# bucketed all-reduce is asserted against this baseline on machines too
# small for a wall-clock speedup (see run_bench).
PRE_BUCKETING_OVERHEAD_MS = {"broadcast": 17.315, "publish": 13.300,
                             "reduce": 20.354}
PRE_BUCKETING_TOTAL_MS = round(sum(PRE_BUCKETING_OVERHEAD_MS.values()), 3)

#: Phases counted as parallel-path overhead (everything the parent does
#: per step that the serial loop would not do at all).
OVERHEAD_PHASES = ("broadcast", "publish", "reduce")


def _best_seconds(fn, repeats: int) -> float:
    fn()                                    # warmup
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(min(samples))


def _reports_identical(a, b) -> bool:
    return (set(a.total) == set(b.total)
            and all(np.array_equal(a.total[k], b.total[k]) for k in a.total)
            and all(np.array_equal(a.per_class[k], b.per_class[k])
                    for k in a.per_class))


def _bench_scoring(cfg: dict, workers: int, repeats: int, seed: int) -> dict:
    from ..core.importance import ImportanceConfig, ImportanceEvaluator
    from ..data import make_cifar_like
    from ..models import build_model

    model = build_model(cfg["model"], num_classes=cfg["num_classes"],
                        image_size=cfg["image_size"], width=cfg["width"],
                        seed=seed)
    train, _ = make_cifar_like(num_classes=cfg["num_classes"],
                               image_size=cfg["image_size"],
                               samples_per_class=cfg["samples_per_class"],
                               seed=seed)
    groups = [g.conv for g in model.prunable_groups()]
    icfg = ImportanceConfig(images_per_class=cfg["images_per_class"],
                            tau_mode="quantile", tau_quantile=0.9, seed=seed)

    serial = ImportanceEvaluator(model, train, cfg["num_classes"], icfg)
    serial_report = serial.evaluate(groups)
    serial_s = _best_seconds(lambda: serial.evaluate(groups), repeats)

    parallel = ImportanceEvaluator(model, train, cfg["num_classes"], icfg,
                                   workers=workers)
    try:
        parallel_report = parallel.evaluate(groups)  # warmup builds the pool
        if not _reports_identical(serial_report, parallel_report):
            raise AssertionError(
                "parallel importance report differs from serial — the "
                "bit-identity contract of repro.parallel.scoring is broken")
        parallel_s = _best_seconds(lambda: parallel.evaluate(groups), repeats)
    finally:
        parallel.close()

    return dict(cfg, workers=workers,
                groups=len(groups),
                serial_s=round(serial_s, 4),
                parallel_s=round(parallel_s, 4),
                speedup=round(serial_s / parallel_s, 3) if parallel_s else None,
                bit_identical=True)


def _bench_finetune(cfg: dict, workers: int, repeats: int, seed: int,
                    transport: str = "fp32") -> dict:
    from ..core.trainer import Trainer, TrainingConfig
    from ..data import make_cifar_like
    from ..models import build_model

    train, _ = make_cifar_like(num_classes=cfg["num_classes"],
                               image_size=cfg["image_size"],
                               samples_per_class=cfg["samples_per_class"],
                               seed=seed)
    base = TrainingConfig(epochs=1, batch_size=cfg["batch_size"], lr=0.01,
                          seed=seed)

    def epoch_seconds(**overrides) -> float:
        import dataclasses
        model = build_model(cfg["model"], num_classes=cfg["num_classes"],
                            image_size=cfg["image_size"], width=cfg["width"],
                            seed=seed)
        trainer = Trainer(model, train,
                          config=dataclasses.replace(base, **overrides))
        try:
            return _best_seconds(lambda: trainer.train(epochs=1), repeats)
        finally:
            trainer.close()

    def sharded_epoch(**overrides) -> tuple[float, dict, int]:
        """Best epoch wall time plus that epoch's phase split and steps."""
        import dataclasses
        model = build_model(cfg["model"], num_classes=cfg["num_classes"],
                            image_size=cfg["image_size"], width=cfg["width"],
                            seed=seed)
        trainer = Trainer(model, train,
                          config=dataclasses.replace(base, **overrides))
        try:
            trainer.train(epochs=1)            # warmup
            samples = []
            for _ in range(repeats):
                before = dict(trainer.phase_totals)
                steps_before = trainer.steps_run
                start = time.perf_counter()
                trainer.train(epochs=1)
                elapsed = time.perf_counter() - start
                samples.append((
                    elapsed,
                    {k: trainer.phase_totals[k] - before[k] for k in before},
                    trainer.steps_run - steps_before))
        finally:
            trainer.close()
        return min(samples, key=lambda sample: sample[0])

    autograd_s = epoch_seconds()
    fused_s = epoch_seconds(fused_reg=True)
    sharded_s, phases, steps = sharded_epoch(workers=workers,
                                             grad_transport=transport)
    overhead_ms = sum(phases[k] for k in OVERHEAD_PHASES) / steps * 1e3
    return dict(cfg, workers=workers, grad_transport=transport,
                autograd_s=round(autograd_s, 4),
                fused_s=round(fused_s, 4),
                sharded_s=round(sharded_s, 4),
                fused_speedup=round(autograd_s / fused_s, 3) if fused_s
                else None,
                sharded_speedup=round(autograd_s / sharded_s, 3) if sharded_s
                else None,
                steps=int(steps),
                phases_s={k: round(v, 4) for k, v in phases.items()},
                phase_sum_s=round(sum(phases.values()), 4),
                overhead_ms_per_step=round(overhead_ms, 3),
                pre_bucketing_overhead_ms_per_step=PRE_BUCKETING_TOTAL_MS)


def _assert_finetune_healthy(finetune: dict, cpus: int,
                             smoke: bool) -> None:
    """Acceptance gates of the overlapped all-reduce (run by every bench).

    * The phase breakdown must account for the measured epoch (within
      5%) — otherwise the per-step numbers are leaking time somewhere
      unattributed and cannot be trusted.
    * On machines with real parallelism (≥4 CPUs) the sharded epoch must
      beat the serial autograd epoch outright. On smaller machines a
      wall-clock speedup is physically unavailable, so the gate is the
      thing this implementation actually controls: per-step parent-side
      overhead must be at least 3× below the pre-bucketing baseline.
    """
    sharded_s = finetune["sharded_s"]
    drift = abs(finetune["phase_sum_s"] - sharded_s)
    if drift > 0.05 * sharded_s:
        raise AssertionError(
            f"sharded phase breakdown ({finetune['phase_sum_s']}s) drifts "
            f"{drift / sharded_s:.1%} from the measured epoch "
            f"({sharded_s}s) — per-step accounting is leaking time")
    if cpus >= 4:
        floor = 0.5 if smoke else 2.0
        if finetune["sharded_speedup"] < floor:
            raise AssertionError(
                f"sharded_speedup {finetune['sharded_speedup']} below the "
                f"{floor}x floor on a {cpus}-CPU machine")
    else:
        cap = PRE_BUCKETING_TOTAL_MS / 3.0
        if finetune["overhead_ms_per_step"] > cap:
            raise AssertionError(
                f"parallel-path overhead {finetune['overhead_ms_per_step']}"
                f"ms/step exceeds {cap:.1f}ms — less than the required 3x "
                f"reduction vs the pre-bucketing baseline "
                f"({PRE_BUCKETING_TOTAL_MS}ms/step)")
        if finetune["sharded_speedup"] < 0.25:
            raise AssertionError(
                f"sharded_speedup {finetune['sharded_speedup']} collapsed "
                "below 0.25x even for a small machine")


def run_bench(workers: int = 4, repeats: int = 3, smoke: bool = False,
              seed: int = 0, transport: str = "fp32") -> dict:
    """Benchmark parallel scoring + fused/sharded fine-tuning.

    Raises ``AssertionError`` if the parallel importance report is not
    bit-identical to the serial one, if the sharded phase accounting does
    not sum to the measured epoch, or if the sharded path misses its
    machine-appropriate performance floor — the benchmark doubles as an
    end-to-end determinism and performance check.
    """
    from .pool import resolve_processes

    config = SMOKE_CONFIG if smoke else BENCH_CONFIG
    if smoke:
        workers = min(workers, 2)
        repeats = min(repeats, 2)
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    finetune = _bench_finetune(config["finetune"], workers, repeats, seed,
                               transport=transport)
    _assert_finetune_healthy(finetune, cpus, smoke)
    return {
        "benchmark": "repro.parallel scoring + fine-tuning",
        "smoke": bool(smoke),
        "workers": int(workers),
        "physical_processes": resolve_processes(workers),
        "cpu_count": int(cpus),
        "repeats": int(repeats),
        "numpy": np.__version__,
        "scoring": _bench_scoring(config["scoring"], workers, repeats, seed),
        "finetune": finetune,
    }


def write_bench(results: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")


def format_table(results: dict) -> str:
    s = results["scoring"]
    f = results["finetune"]
    lines = [
        f"workers={results['workers']} "
        f"(physical processes={results['physical_processes']}, "
        f"cpus={results['cpu_count']})",
        "",
        f"scoring   {s['model']:<10} classes={s['num_classes']:<4} "
        f"M={s['images_per_class']:<3} serial={s['serial_s']:.3f}s "
        f"parallel={s['parallel_s']:.3f}s speedup={s['speedup']:.2f}x "
        f"bit_identical={s['bit_identical']}",
        f"finetune  {f['model']:<10} batch={f['batch_size']:<4} "
        f"autograd={f['autograd_s']:.3f}s fused={f['fused_s']:.3f}s "
        f"sharded={f['sharded_s']:.3f}s "
        f"fused_speedup={f['fused_speedup']:.2f}x "
        f"sharded_speedup={f['sharded_speedup']:.2f}x",
        "          phases/step: " + " ".join(
            f"{k}={f['phases_s'][k] / f['steps'] * 1e3:.2f}ms"
            for k in ("broadcast", "compute", "publish", "reduce", "step")),
        f"          parallel-path overhead="
        f"{f['overhead_ms_per_step']:.2f}ms/step "
        f"(pre-bucketing baseline: "
        f"{f['pre_bucketing_overhead_ms_per_step']:.2f}ms/step)",
    ]
    return "\n".join(lines)
