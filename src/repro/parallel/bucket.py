"""Gradient buckets: flat layout, seqlock publication, int8 transport.

The sharded trainer moves per-shard gradients from worker processes to
the parent through shared memory. This module defines the three pieces
that make that transfer overlapped and allocation-free:

* :class:`BucketPlan` — a deterministic grouping of the model's
  parameters into size-targeted *buckets* laid out back to back in one
  flat float32 array per shard. Parameters are packed in **reverse**
  ``named_parameters`` order because backward produces gradients roughly
  from the output layer backwards, so the first buckets to fill are the
  first the parent can reduce.
* the **seqlock** publication protocol — a per-``(shard, bucket)``
  int64 sequence word. The writer (exactly one per shard) sets the word
  to the odd value ``2·step − 1`` before touching the bucket's data and
  to the even value ``2·step`` after; the reader treats the bucket as
  ready only when it observes the even value for the *current* step, and
  re-reads the word after copying out of the region. A worker killed
  mid-publish therefore leaves the word odd (or stale) and the parent
  never consumes the torn data — the supervisor's respawned worker
  recomputes the step from unchanged shared weights and republishes
  bit-identical bytes.
* optional **int8 transport** — per-bucket symmetric quantization with a
  *power-of-two* scale (reusing :func:`repro.quant.quantize_array` with
  an explicit scale). The exactness certificate: with ``scale = 2^e ≥
  max|g|/127`` every code satisfies ``|q| ≤ 127`` and the reconstruction
  ``q · scale`` is a float32 exponent shift of a small integer, hence
  **bit-exact** — the only loss is the rounding applied at quantize
  time, bounded by ``scale/2`` per element. Buckets whose certificate
  cannot hold (non-finite gradients) fall back to shipping the raw
  float32 region (``mode=RAW``); the parent additionally re-verifies the
  certificate on receive and demotes a violating bucket to an exact
  float64 dequantization rather than trusting the fast path.

Nothing in here depends on the worker pool: the plan and protocol are
pure functions of ``(parameter spec, workers, step)``, which is what
keeps the fixed-``(workers, seed)`` bitwise-reproducibility contract of
:mod:`repro.parallel.shard` intact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Bucket", "BucketPlan", "MODE_QUANT", "MODE_RAW",
           "seq_writing", "seq_ready", "mark_writing", "mark_ready",
           "is_ready", "pow2_scale", "quantize_bucket", "dequantize_bucket"]

#: Default size target of one bucket (bytes of float32 gradient payload).
DEFAULT_BUCKET_BYTES = 512 * 1024

#: Transport mode codes stored per (shard, bucket) in shared memory.
MODE_QUANT, MODE_RAW = 0, 1


@dataclass(frozen=True)
class Bucket:
    """One contiguous bucket of the flat gradient layout."""

    index: int
    names: tuple[str, ...]
    start: int          # element offset into the flat float32 array
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


class BucketPlan:
    """Deterministic assignment of parameters to flat gradient buckets.

    Built from ``[(name, shape)]`` in ``named_parameters`` order; the
    flat layout packs parameters in *reverse* order (see module doc).
    The plan is a pure function of the parameter spec and
    ``target_bytes``, so parent and every worker rebuild the identical
    plan from the architecture alone.
    """

    def __init__(self, params: list[tuple[str, tuple[int, ...]]],
                 target_bytes: int = DEFAULT_BUCKET_BYTES):
        if target_bytes <= 0:
            raise ValueError("target_bytes must be positive")
        if not params:
            raise ValueError("cannot bucket an empty parameter list")
        self.target_bytes = int(target_bytes)
        #: name -> (bucket index, flat start, flat stop, shape)
        self.slices: dict[str, tuple[int, int, int, tuple[int, ...]]] = {}
        buckets: list[Bucket] = []
        names: list[str] = []
        offset = 0
        bucket_start = 0
        bucket_bytes = 0
        for name, shape in reversed(params):
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            if bucket_bytes and bucket_bytes + size * 4 > self.target_bytes:
                buckets.append(Bucket(len(buckets), tuple(names),
                                      bucket_start, offset))
                names = []
                bucket_start = offset
                bucket_bytes = 0
            self.slices[name] = (len(buckets), offset, offset + size,
                                 tuple(shape))
            names.append(name)
            offset += size
            bucket_bytes += size * 4
        buckets.append(Bucket(len(buckets), tuple(names), bucket_start,
                              offset))
        self.buckets: tuple[Bucket, ...] = tuple(buckets)
        self.total_floats = offset

    def __len__(self) -> int:
        return len(self.buckets)

    def bucket_of(self, name: str) -> int:
        return self.slices[name][0]

    def param_view(self, flat: np.ndarray, name: str) -> np.ndarray:
        """Reshaped view of ``name``'s region inside a flat array."""
        _, start, stop, shape = self.slices[name]
        return flat[start:stop].reshape(shape)

    def bucket_view(self, flat: np.ndarray, index: int) -> np.ndarray:
        bucket = self.buckets[index]
        return flat[bucket.start:bucket.stop]


# ----------------------------------------------------------------------
# Seqlock protocol (single writer per word, single reader)
# ----------------------------------------------------------------------
def seq_writing(step: int) -> int:
    """Odd sequence value marking 'bucket data is being written'."""
    return 2 * step - 1


def seq_ready(step: int) -> int:
    """Even sequence value marking 'bucket data of ``step`` is stable'."""
    return 2 * step


def mark_writing(seq: np.ndarray, index: int, step: int) -> None:
    seq[index] = seq_writing(step)


def mark_ready(seq: np.ndarray, index: int, step: int) -> None:
    seq[index] = seq_ready(step)


def is_ready(seq: np.ndarray, index: int, step: int) -> bool:
    return int(seq[index]) == seq_ready(step)


# ----------------------------------------------------------------------
# int8 transport
# ----------------------------------------------------------------------
def pow2_scale(amax: float) -> float:
    """Smallest power of two ``s`` with ``amax / s ≤ 127``.

    A power-of-two scale is the whole exactness certificate: ``q · s``
    only shifts the exponent of the small integer ``q``, so the float32
    reconstruction is bit-exact for every representable magnitude.
    """
    if amax <= 0:
        return 1.0
    mantissa, exponent = math.frexp(amax / 127.0)
    # frexp: amax/127 = mantissa * 2^exponent with mantissa in [0.5, 1).
    # 2^(exponent-1) covers it only when the mantissa is exactly 0.5.
    if mantissa == 0.5:
        exponent -= 1
    return math.ldexp(1.0, exponent)


def quantize_bucket(flat: np.ndarray, q_out: np.ndarray
                    ) -> tuple[int, float]:
    """Quantize one float32 bucket into int8 codes.

    Returns ``(mode, scale)``. ``MODE_QUANT`` with a power-of-two scale
    when the certificate holds; ``MODE_RAW`` (codes untouched, reader
    must use the float32 region) when the bucket contains non-finite
    values — a NaN would otherwise poison the scale and hide the fault
    from the numerical-health sentinels.
    """
    from ..quant import quantize_array
    amax = float(np.max(np.abs(flat))) if flat.size else 0.0
    if not math.isfinite(amax):
        return MODE_RAW, 0.0
    scale = pow2_scale(amax)
    q, _ = quantize_array(flat, bits=8, scale=scale)
    np.copyto(q_out, q, casting="unsafe")
    return MODE_QUANT, scale


def dequantize_bucket(q: np.ndarray, scale: float, out: np.ndarray,
                      verify: bool = True) -> None:
    """Exact reconstruction ``out = q · scale`` (float32).

    ``verify=True`` re-checks the certificate on the reader side; a
    violating bucket (non-power-of-two scale — e.g. a stale or corrupted
    scale slot) is demoted to an exact float64 dequantization instead of
    trusting the float32 fast path.
    """
    certified = (scale > 0 and math.isfinite(scale)
                 and math.frexp(scale)[0] == 0.5)
    if verify and not certified:
        out64 = q.astype(np.float64) * float(scale)
        np.copyto(out, out64.astype(np.float32))
        return
    np.copyto(out, q, casting="unsafe")
    np.multiply(out, np.float32(scale), out=out)
