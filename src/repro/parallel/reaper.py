"""Run-scoped shared-memory ledger and orphan reaper.

``multiprocessing.shared_memory`` segments are kernel objects: they
outlive any process that forgets to ``unlink()`` them, and a SIGKILL —
the exact fault the supervisor is built to survive — gives the owner no
chance to clean up. This module guarantees that every segment created
through :class:`~repro.parallel.shm.SharedArrayBundle` is reclaimed:

* **ledger** — every created segment is recorded in a per-process ledger
  file under ``<tmpdir>/repro-shm-ledger/<pid>.json`` *before* the caller
  sees the bundle, and removed from it on ``unlink``;
* **atexit sweep** — normal interpreter exit (including an uncaught
  ``KeyboardInterrupt``) unlinks everything still in this process's
  ledger;
* **orphan sweep** — on the next startup (pool construction, or an
  explicit :func:`sweep_orphans`), ledger files whose owning process is
  dead are replayed: their segments are unlinked and the stale ledger
  removed. A SIGKILLed run therefore leaks segments only until the next
  run starts.

The ledger lists segment *names*, not handles, so sweeping works from any
process. Entries belonging to a still-running process are never touched.

Beyond shm segments, replica-owned filesystem artifacts — unix-domain
sockets, pid files, and their scratch directories — share the same
lifecycle problem: a SIGKILLed serve run leaves them behind. They ride
the same ledger as ``path:``-prefixed entries (:func:`register_path` /
:func:`unregister_path`); the sweeps reclaim them in reverse-sorted
order so files inside a registered directory are removed before the
``rmdir`` of the directory itself.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import threading
from multiprocessing import shared_memory
from pathlib import Path

__all__ = ["ledger_dir", "register", "unregister", "register_path",
           "unregister_path", "sweep_orphans", "live_segments", "reap_all"]

_PATH_PREFIX = "path:"

_lock = threading.Lock()
_segments: set[str] = set()
_atexit_armed = False
_owner_pid = os.getpid()


def _check_fork() -> None:
    """Reset inherited state after a fork (caller holds ``_lock``).

    A forked child inherits the parent's ``_segments`` set; registering a
    new segment there must not write the *parent's* live segments into
    the child's ledger — a later orphan sweep would destroy them under
    the still-running parent.
    """
    global _owner_pid
    if os.getpid() != _owner_pid:
        _segments.clear()
        _owner_pid = os.getpid()


def ledger_dir() -> Path:
    """Directory holding one ledger file per segment-owning process."""
    override = os.environ.get("REPRO_SHM_LEDGER_DIR")
    base = Path(override) if override else (
        Path(tempfile.gettempdir()) / "repro-shm-ledger")
    return base


def _ledger_path(pid: int | None = None) -> Path:
    return ledger_dir() / f"{os.getpid() if pid is None else pid}.json"


def _write_ledger() -> None:
    """Persist this process's live-segment set (caller holds ``_lock``)."""
    path = _ledger_path()
    if not _segments:
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(sorted(_segments)))
    os.replace(tmp, path)


def _unlink_segment(name: str) -> bool:
    """Best-effort destroy of one segment by name; True when it existed."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except Exception:  # pragma: no cover - platform oddities
        return False
    try:
        segment.close()
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another reaper
        return False
    return True


def _unlink_path(path: str) -> bool:
    """Best-effort removal of a ledgered file/socket/dir; True on removal.

    Directories are removed with ``rmdir`` only — a registered scratch
    dir is reclaimed after its (also-registered) contents, never by a
    recursive delete of files the run did not ledger.
    """
    target = Path(path)
    try:
        if target.is_dir() and not target.is_symlink():
            target.rmdir()
        else:
            target.unlink()
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - non-empty dir, permissions
        return False
    return True


def _reclaim(entry: str) -> bool:
    """Destroy one ledger entry, dispatching on its type prefix."""
    if entry.startswith(_PATH_PREFIX):
        return _unlink_path(entry[len(_PATH_PREFIX):])
    return _unlink_segment(entry)


def _atexit_sweep() -> None:  # pragma: no cover - runs at interpreter exit
    reap_all()


def register(name: str) -> None:
    """Record a created segment in the run ledger (durable before use)."""
    global _atexit_armed
    with _lock:
        _check_fork()
        _segments.add(name)
        _write_ledger()
        if not _atexit_armed:
            _atexit_armed = True
            atexit.register(_atexit_sweep)


def unregister(name: str) -> None:
    """Drop a segment from the ledger after its orderly unlink."""
    with _lock:
        _check_fork()
        _segments.discard(name)
        _write_ledger()


def register_path(path: str | os.PathLike) -> None:
    """Ledger a replica-owned filesystem artifact (socket/pid file/dir)."""
    register(_PATH_PREFIX + str(Path(path).absolute()))


def unregister_path(path: str | os.PathLike) -> None:
    """Drop a filesystem artifact from the ledger after orderly removal."""
    unregister(_PATH_PREFIX + str(Path(path).absolute()))


def live_segments() -> set[str]:
    """Names this process still owns according to its ledger."""
    with _lock:
        _check_fork()
        return set(_segments)


def reap_all() -> int:
    """Unlink every segment this process still has in its ledger.

    Called by atexit; safe to call directly (e.g. from a signal handler
    or a test). Returns how many segments were actually destroyed.
    """
    with _lock:
        _check_fork()
        # Reverse-sorted so "path:<dir>/<file>" entries are reclaimed
        # before their parent "path:<dir>" (a prefix sorts first).
        doomed = sorted(_segments, reverse=True)
        _segments.clear()
        _write_ledger()
    return sum(_reclaim(name) for name in doomed)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, other user
        return True
    return True


def sweep_orphans() -> list[str]:
    """Reclaim segments whose owning process died without cleanup.

    Scans the ledger directory; for every ledger whose pid is dead, the
    listed segments are unlinked and the ledger file removed. Returns the
    names of the segments that were actually destroyed.
    """
    base = ledger_dir()
    if not base.is_dir():
        return []
    reaped: list[str] = []
    for path in sorted(base.glob("*.json")):
        try:
            pid = int(path.stem)
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            names = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            names = []
        for name in sorted((n for n in names if isinstance(n, str)),
                           reverse=True):
            if _reclaim(name):
                reaped.append(name)
        try:
            path.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            pass
    return reaped
