"""Class-parallel importance scoring (the Eq. 5–7 pipeline, sharded).

Serial :meth:`ImportanceEvaluator.evaluate` runs ``num_classes`` strictly
sequential forward+backward passes. This module fans those per-class
evaluations across a persistent :class:`~repro.parallel.WorkerPool` and
reduces the per-class score columns into the same
:class:`~repro.core.importance.ImportanceReport`, **bit-identical** to the
serial result under a fixed seed. Three independent properties make the
bit-identity structural rather than lucky:

1. The parent draws the per-class image indices with the *same* rng
   consumption sequence as the serial loop and ships the sampled images
   to the workers, so every class scores the exact arrays serial scores.
2. Per-class score columns never interact: each column is produced by one
   worker from one (fused) pass and written into its own slot of the
   ``(F, num_classes)`` matrix, so neither the worker count nor the task
   schedule can reorder any floating-point reduction.
3. The per-class pass itself is exact: summed cross entropy makes each
   sample's activation gradient independent of its batch neighbours, so
   fusing K classes into one forward+backward yields bitwise the same
   ``|a · ∂L/∂a|`` slices as K separate passes (verified per model in
   ``tests/parallel``).

The workers additionally apply two algebraic speedups that the serial
path cannot (cheaply) use, which is where the measured >2× comes from on
top of — not instead of — any multi-core scaling:

* **rooted backward**: all parameters are frozen and the graph is rooted
  at the first monitored layer's own parameters (probed once; fallback is
  rooting at the input). Backward then skips every weight-gradient GEMM —
  scoring only needs *activation* gradients — without changing them.
* **fused class chunks**: several classes share one forward+backward
  (capped so the fused batch stays cache-resident), amortising the
  Python/graph overhead of a pass.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..tensor import Tensor

__all__ = ["FusedTaylorScorer", "ScoringService", "ScoringSession",
           "aggregate_scores_fast"]

#: Cap on images per fused forward+backward; larger batches thrash the
#: cache and run *slower* than serial per-class passes on small CPUs
#: (measured optimum ~256 on the benchmark workloads; chunk size never
#: affects the scores, only wall-clock).
_FUSE_IMAGE_CAP = 256


def aggregate_scores_fast(taylor_scores: np.ndarray, tau: float,
                          aggregation: str = "max") -> np.ndarray:
    """Bitwise-identical fast path of :func:`repro.core.importance.aggregate_scores`.

    The serial form materialises the Eq. 5 indicator as a float64 array
    and averages it; here the average is ``count_nonzero / M``. Both are
    exact: the indicator sum is an integer far below 2**53, so numpy's
    (pairwise) float64 summation and the integer count produce the same
    value, and both divide it by the same float64 ``M``. The Eq. 7
    reduction then operates on an identical ``s_ave`` array.
    """
    if taylor_scores.ndim < 2:
        raise ValueError("expected at least (M, C) scores")
    m = taylor_scores.shape[0]
    if m == 0:
        raise ValueError(
            "aggregate_scores received scores for zero images (M=0); the "
            "Eq. 6 average would silently be NaN")
    s_ave = np.count_nonzero(taylor_scores > tau, axis=0) / np.float64(m)
    if s_ave.ndim == 1:                                     # linear layer
        return s_ave
    flat = s_ave.reshape(s_ave.shape[0], -1)
    if aggregation == "max":
        return flat.max(axis=1)                             # Eq. 7
    return flat.mean(axis=1)


class FusedTaylorScorer:
    """Taylor scores for a batch mixing several classes, weight-grad free.

    Numerically identical to running
    :class:`~repro.core.taylor.TaylorScoreEngine` on each class slice
    (summed CE keeps per-sample gradients independent), but a single pass
    scores the whole batch, parameters are frozen so backward never
    computes a weight gradient, and with ``root_path`` the graph starts at
    that layer's parameters so even the input gradient of the stem layers
    is skipped.
    """

    def __init__(self, model, layer_paths: list[str], loss_fn=None):
        from ..core.taylor import _per_sample_ce
        self.model = model
        self.layer_paths = list(layer_paths)
        self.loss_fn = loss_fn or _per_sample_ce

    def scores(self, images: np.ndarray, targets: np.ndarray,
               root_path: str | None = None) -> dict[str, np.ndarray]:
        from ..core.hooks import ActivationRecorder
        model = self.model
        was_training = model.training
        model.eval()
        params = [p for _, p in model.named_parameters()]
        saved = [p.requires_grad for p in params]
        try:
            for p in params:
                p.requires_grad = False
            if root_path is not None:
                for p in model.get_module(root_path).parameters():
                    p.requires_grad = True
            x = Tensor(np.asarray(images, dtype=np.float32),
                       requires_grad=root_path is None)
            model.zero_grad()
            with ActivationRecorder(model, self.layer_paths) as recorder:
                logits = model(x)
                loss = self.loss_fn(logits, np.asarray(targets, dtype=np.intp))
                loss.backward()
                result = {}
                for path in self.layer_paths:
                    act = recorder.activations[path]
                    if act.grad is None:
                        raise RuntimeError(
                            f"activation of {path!r} received no gradient; "
                            "is the layer on the path to the loss?")
                    result[path] = np.abs(act.data * act.grad)
            model.zero_grad()
            return result
        finally:
            for p, s in zip(params, saved):
                p.requires_grad = s
            model.train(was_training)


class ScoringService:
    """Worker-side service: score class shards against shared weights.

    Construction happens once per worker process: the model is rebuilt
    from its architecture recipe, shrunk to the checkpointed shapes when
    the parent model has been pruned, and its parameters/buffers are
    *bound* to the shared-memory views — a parent-side
    :meth:`ScoringSession.refresh` is instantly visible here.
    """

    def __init__(self, arch: dict, weight_spec, input_shape, group_paths,
                 config_dict: dict, scores_spec=None):
        from ..core.importance import ImportanceConfig
        from ..core.taylor import ExactZeroingEngine
        from ..models import build_model
        from .shm import SharedArrayBundle

        self.config = ImportanceConfig(**config_dict)
        self.group_paths = list(group_paths)
        self.input_shape = tuple(input_shape)
        # Output matrices (F, num_classes) live in shared memory too:
        # workers write disjoint columns in place, so per-class score
        # vectors never travel through the (pickling) result queue.
        self._out = (SharedArrayBundle.attach(scores_spec)
                     if scores_spec is not None else None)

        arch = dict(arch)
        model = build_model(arch.pop("name"), **arch)
        self._bundle = SharedArrayBundle.attach(weight_spec)
        state = self._bundle.arrays
        try:
            _bind_state_views(model, state)
        except ValueError:
            # Parent model was pruned: shrink the fresh build to match.
            from ..io.checkpoint import conform_to_state
            conform_to_state(model, dict(state), self.input_shape)
            _bind_state_views(model, state)
        model.eval()
        self.model = model

        if self.config.use_exact:
            self._engine = ExactZeroingEngine(model, self.group_paths)
            self._scorer = None
            self.root_path = None
        else:
            self._engine = None
            self._scorer = FusedTaylorScorer(model, self.group_paths)
            self.root_path = self._probe_root()
        self._fuse = max(1, _FUSE_IMAGE_CAP // self.config.images_per_class)

    def close(self) -> None:
        """Drop this process's shared-memory mappings (parent-side use)."""
        self._bundle.close()
        if self._out is not None:
            self._out.close()

    # ------------------------------------------------------------------
    def _probe_root(self) -> str | None:
        """Check whether rooting at the first monitored layer reaches all.

        Every monitored activation must be downstream of that layer for
        the rooted fast path to be exact; exotic topologies fall back to
        rooting at the input (which is always correct, and still skips
        all weight gradients).
        """
        from ..core.hooks import ActivationRecorder
        candidate = self.group_paths[0]
        model = self.model
        params = [p for _, p in model.named_parameters()]
        saved = [p.requires_grad for p in params]
        try:
            for p in params:
                p.requires_grad = False
            for p in model.get_module(candidate).parameters():
                p.requires_grad = True
            probe = Tensor(np.zeros((1,) + self.input_shape, np.float32))
            with ActivationRecorder(model, self.group_paths) as rec:
                model(probe)
                ok = all(rec.activations[p].requires_grad
                         for p in self.group_paths)
        except Exception:  # noqa: BLE001 - any probe failure means fallback
            ok = False
        finally:
            for p, s in zip(params, saved):
                p.requires_grad = s
        return candidate if ok else None

    # ------------------------------------------------------------------
    def handle(self, task: dict) -> list:
        """Score the task's ``(class, start, stop)`` entries.

        Score columns are written straight into the shared output
        matrices; only the list of completed class indices returns
        through the queue. (Without an output bundle — direct use in
        tests — the columns come back as
        ``[(class_index, {path: column}), ...]`` instead.)
        """
        from .shm import SharedArrayBundle
        bundle = SharedArrayBundle.attach(task["images"])
        try:
            bank = bundle.arrays["images"]
            entries = task["entries"]
            out: list = []
            if self._engine is not None:          # exact-zeroing mode
                for class_index, start, stop in entries:
                    images = np.array(bank[start:stop], copy=True)
                    targets = np.full(stop - start, class_index, np.intp)
                    taylor = self._engine.scores(images, targets)
                    out.append(self._emit(class_index, self._reduce(taylor)))
                return out
            for i in range(0, len(entries), self._fuse):
                out.extend(self._score_chunk(bank, entries[i:i + self._fuse]))
            return out
        finally:
            bundle.close()

    def _emit(self, class_index: int, cols: dict[str, np.ndarray]):
        if self._out is None:
            return (class_index, cols)
        for path, col in cols.items():
            self._out.arrays[path][:, class_index] = col
        return class_index

    def _score_chunk(self, bank: np.ndarray, chunk: list) -> list:
        # Session-built entries tile the bank back to back, so the fused
        # batch is a zero-copy view; arbitrary (test-supplied) entries
        # fall back to an explicit gather. Same values either way.
        if all(s == chunk[i][2] for i, (_, s, _) in enumerate(chunk[1:])):
            images = bank[chunk[0][1]:chunk[-1][2]]
        else:
            images = np.concatenate([bank[s:e] for _, s, e in chunk], axis=0)
        targets = np.repeat(np.array([c for c, _, _ in chunk], np.intp),
                            [e - s for _, s, e in chunk])
        taylor = self._scorer.scores(images, targets,
                                     root_path=self.root_path)
        results = []
        offset = 0
        for class_index, start, stop in chunk:
            m = stop - start
            sliced = {p: taylor[p][offset:offset + m]
                      for p in self.group_paths}
            offset += m
            results.append(self._emit(class_index, self._reduce(sliced)))
        return results

    def _reduce(self, taylor: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        cfg = self.config
        if cfg.tau_mode == "quantile":
            pooled = np.concatenate(
                [taylor[p].reshape(-1) for p in self.group_paths])
            tau = float(np.quantile(pooled, cfg.tau_quantile))
        else:
            tau = cfg.tau
        return {p: aggregate_scores_fast(taylor[p], tau, cfg.aggregation)
                for p in self.group_paths}


def _group_width(model, path: str) -> int:
    """Number of prunable units (filters/neurons) of a monitored layer."""
    module = model.get_module(path)
    for attr in ("out_channels", "out_features", "num_features"):
        width = getattr(module, attr, None)
        if width is not None:
            return int(width)
    raise ValueError(f"cannot determine the filter count of {path!r} "
                     f"({type(module).__name__})")


def _bind_state_views(model, state: dict[str, np.ndarray]) -> None:
    """Point every parameter/buffer of ``model`` at the shared views."""

    def bind(module, prefix: str) -> None:
        for name, param in module._parameters.items():
            view = state[f"{prefix}{name}"]
            if view.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {prefix}{name}: shared "
                    f"{view.shape} vs model {param.data.shape}")
            param.data = view
        for name in module._buffers:
            view = state[f"{prefix}{name}"]
            if view.shape != getattr(module, name).shape:
                raise ValueError(
                    f"shape mismatch for buffer {prefix}{name}")
            object.__setattr__(module, name, view)
        for name, sub in module._modules.items():
            bind(sub, f"{prefix}{name}.")

    bind(model, "")


class ScoringSession:
    """Parent-side handle: weights in shared memory + a persistent pool.

    Created lazily by :class:`~repro.core.importance.ImportanceEvaluator`
    and reused across ``evaluate`` calls while the model's shapes are
    unchanged; the weights cross the process boundary once and are
    refreshed in place per evaluation.
    """

    def __init__(self, model, dataset, num_classes: int, config,
                 group_paths: list[str], workers: int,
                 processes: int | None = None, supervision=None,
                 on_event=None):
        from .pool import resolve_processes
        from .shm import SharedArrayBundle
        from .supervisor import SupervisedWorkerPool

        arch = getattr(model, "arch", None)
        if not isinstance(arch, dict) or "name" not in arch:
            raise ValueError(
                "parallel importance scoring rebuilds the model inside "
                "each worker and needs an architecture recipe: build the "
                "model via repro.models.build_model or set model.arch = "
                "{'name': ..., **kwargs}")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.model = model
        self.num_classes = num_classes
        self.config = config
        self.group_paths = list(group_paths)
        self.workers = workers
        state = model.state_dict()
        self._signature = tuple((k, state[k].shape) for k in sorted(state))
        self._weights = SharedArrayBundle.create(state)
        self._scores = None
        self.pool = None
        try:
            self._scores = SharedArrayBundle.create(
                {p: np.zeros((_group_width(model, p), num_classes),
                             np.float64)
                 for p in self.group_paths})
            input_shape = tuple(np.asarray(dataset[0][0]).shape)
            self.physical_processes = resolve_processes(workers, processes)
            self.pool = SupervisedWorkerPool(
                self.physical_processes, ScoringService,
                (dict(arch), self._weights.spec, input_shape,
                 self.group_paths, dataclasses.asdict(config),
                 self._scores.spec),
                supervision=supervision, on_event=on_event)
        except BaseException:
            # A failed start-up (e.g. a worker raising during attach)
            # must not leak the segments created above: nothing else
            # holds a reference that could ever unlink them.
            self.close()
            raise

    # ------------------------------------------------------------------
    def compatible(self, model, group_paths: list[str], workers: int) -> bool:
        """Can this session score ``model`` without a rebuild?"""
        if (model is not self.model or workers != self.workers
                or list(group_paths) != self.group_paths):
            return False
        state = model.state_dict()
        return self._signature == tuple(
            (k, state[k].shape) for k in sorted(state))

    def refresh(self) -> None:
        """Push the parent model's current weights into shared memory."""
        self._weights.copy_from(self.model.state_dict())

    # ------------------------------------------------------------------
    def evaluate(self, dataset):
        """Parallel equivalent of the serial per-class scoring loop."""
        from ..core.importance import ImportanceReport
        from ..data import EmptyDatasetError, per_class_images
        from .shm import SharedArrayBundle

        cfg = self.config
        self.refresh()
        rng = np.random.default_rng(cfg.seed)
        class_arrays = []
        entries: list[tuple[int, int, int]] = []
        start = 0
        for class_index in range(self.num_classes):
            try:
                images = per_class_images(dataset, class_index,
                                          cfg.images_per_class, rng)
            except EmptyDatasetError as exc:
                raise EmptyDatasetError(
                    f"importance evaluation needs samples of every class "
                    f"(Eq. 6 averages over M images per class): {exc}"
                ) from exc
            class_arrays.append(images)
            entries.append((class_index, start, start + len(images)))
            start += len(images)

        bank = SharedArrayBundle.create(
            {"images": np.concatenate(class_arrays, axis=0)})
        try:
            # Unlike sharded training, scoring is per-class independent:
            # task granularity is pure scheduling and cannot change the
            # report. Coalesce to one task per physical process so a
            # CPU-starved box does not pay queue round-trips for logical
            # workers it cannot run concurrently.
            n_shards = min(self.workers, len(entries),
                           max(self.physical_processes, 1))
            bounds = [len(entries) * i // n_shards
                      for i in range(n_shards + 1)]
            tasks = [{"images": bank.spec, "entries": entries[a:b]}
                     for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
            results = self.pool.run_tasks(tasks)
        finally:
            bank.unlink()

        done = sorted(c for shard in results for c in shard)
        if done != list(range(self.num_classes)):  # pragma: no cover
            raise RuntimeError(
                f"parallel scoring covered classes {done} instead of all "
                f"{self.num_classes}")
        per_class = {p: np.array(self._scores.arrays[p], copy=True)
                     for p in self.group_paths}
        report = ImportanceReport(num_classes=self.num_classes)
        report.per_class = per_class
        report.total = {p: m.sum(axis=1) for p, m in per_class.items()}
        return report

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the pool fell back to serial execution (see supervisor)."""
        return self.pool is not None and self.pool.degraded

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
        self._weights.unlink()
        if self._scores is not None:
            self._scores.unlink()

    def __enter__(self) -> "ScoringSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
