"""Sharded data-parallel fine-tuning (the all-reduce side of the pool).

Each optimisation step, the parent broadcasts the current weights through
shared memory, splits the batch into ``workers`` contiguous shards, and
the pool computes each shard's cross-entropy gradients locally (model in
training mode, so batch-norm uses the *shard's* batch statistics, as in
unsynchronised distributed data parallel). The parent then

1. all-reduces the shard gradients — ``g = Σ_k (n_k/n) · g_k`` in shard
   order — into each parameter's ``.grad``,
2. folds the per-shard batch-norm statistics into the running stats
   (exact pooling via ``E[x²]``), and
3. adds the fused analytic regularizer gradients
   (:class:`~repro.core.regularizers.FusedRegularizer`) before the SGD
   step, which runs in the parent only.

Determinism contract
--------------------
``workers`` is a *logical* shard count and part of the numerics: shard
boundaries, gradient reduction order and batch-norm pooling all follow
from it. Fixed ``(workers, seed)`` ⇒ bit-reproducible training history,
regardless of how many physical processes execute the shards. With
``workers=1`` the scaling and pooling collapse to identities, making the
run bitwise equal to the serial fused-regularizer path (pinned by
``tests/parallel/test_sharded_trainer.py``). Different worker counts are
*different* (equally valid) numerics, exactly like changing the device
count under DDP with unsynced batch norm.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TrainingService", "ShardedTrainingSession"]


class TrainingService:
    """Worker-side service: gradients of one batch shard.

    The model parameters are bound to the shared weight views, so the
    parent's per-step broadcast is visible without any message passing;
    shard gradients leave through per-shard shared buffers. Only the tiny
    scalars (loss, correct count) and batch-norm statistics travel over
    the result queue.
    """

    def __init__(self, arch: dict, weight_spec, input_shape, batch_spec,
                 grad_specs):
        from ..models import build_model
        from .scoring import _bind_state_views
        from .shm import SharedArrayBundle

        arch = dict(arch)
        model = build_model(arch.pop("name"), **arch)
        self._weights = SharedArrayBundle.attach(weight_spec)
        state = self._weights.arrays
        try:
            _bind_state_views(model, state)
        except ValueError:
            from ..io.checkpoint import conform_to_state
            conform_to_state(model, dict(state), tuple(input_shape))
            _bind_state_views(model, state)
        model.train()
        self.model = model
        self._batch = SharedArrayBundle.attach(batch_spec)
        self._grads = [SharedArrayBundle.attach(spec) for spec in grad_specs]
        from ..nn import BatchNorm2d
        self._bn_modules = [(path, module)
                            for path, module in model.named_modules()
                            if isinstance(module, BatchNorm2d)]

    def close(self) -> None:
        """Drop this process's shared-memory mappings (parent-side use)."""
        self._weights.close()
        self._batch.close()
        for bundle in self._grads:
            bundle.close()

    def handle(self, task):
        from ..nn import cross_entropy
        from ..tensor import Tensor
        shard_id, start, stop = task
        images = self._batch.arrays["images"][start:stop]
        labels = np.array(self._batch.arrays["labels"][start:stop], copy=True)

        model = self.model
        model.zero_grad()
        for _, module in self._bn_modules:
            object.__setattr__(module, "last_batch_stats", None)
        logits = model(Tensor(images))
        ce = cross_entropy(logits, labels)
        ce.backward()

        views = self._grads[shard_id].arrays
        for name, param in model.named_parameters():
            if param.grad is None:
                views[name][:] = 0.0
            else:
                np.copyto(views[name], param.grad)

        correct = int((logits.data.argmax(axis=1) == labels).sum())
        bn_stats = {}
        for path, module in self._bn_modules:
            stats = module.last_batch_stats
            if stats is not None:
                mean, var, n = stats
                bn_stats[path] = (np.array(mean, copy=True),
                                  np.array(var, copy=True), int(n))
        return float(ce.data), correct, bn_stats


class ShardedTrainingSession:
    """Parent-side handle owning the pool and the shared buffers.

    Created lazily by the :class:`~repro.core.trainer.Trainer` on the
    first batch (when the batch geometry is known) and reused for the
    whole ``train()`` call.
    """

    def __init__(self, model, workers: int, capacity: int,
                 sample_shape: tuple[int, ...],
                 processes: int | None = None, supervision=None,
                 on_event=None):
        from .pool import resolve_processes
        from .shm import SharedArrayBundle
        from .supervisor import SupervisedWorkerPool

        arch = getattr(model, "arch", None)
        if not isinstance(arch, dict) or "name" not in arch:
            raise ValueError(
                "sharded training rebuilds the model inside each worker "
                "and needs an architecture recipe: build the model via "
                "repro.models.build_model or set model.arch")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.model = model
        self.workers = workers
        self.capacity = capacity
        self.sample_shape = tuple(sample_shape)

        self._weights = None
        self._batch = None
        self._grads = []
        self.pool = None
        try:
            state = model.state_dict()
            self._weights = SharedArrayBundle.create(state)
            self._batch = SharedArrayBundle.create({
                "images": np.zeros((capacity,) + self.sample_shape,
                                   np.float32),
                "labels": np.zeros(capacity, np.intp),
            })
            param_arrays = {name: param.data
                            for name, param in model.named_parameters()}
            self._grads = [SharedArrayBundle.create(param_arrays)
                           for _ in range(workers)]
            self.physical_processes = resolve_processes(workers, processes)
            self.pool = SupervisedWorkerPool(
                self.physical_processes, TrainingService,
                (dict(arch), self._weights.spec,
                 (self.sample_shape if len(self.sample_shape) != 3
                  else self.sample_shape),
                 self._batch.spec, tuple(g.spec for g in self._grads)),
                supervision=supervision, on_event=on_event)
        except BaseException:
            # Don't leak the segments when pool start-up fails (e.g. a
            # worker raises during attach): no other owner exists.
            self.close()
            raise

    # ------------------------------------------------------------------
    def compatible(self, batch_shape: tuple[int, ...]) -> bool:
        return (batch_shape[0] <= self.capacity
                and tuple(batch_shape[1:]) == self.sample_shape)

    def run_batch(self, images: np.ndarray,
                  labels: np.ndarray) -> dict:
        """One forward/backward over the pool; grads land in the model.

        Returns ``{"ce": float, "correct": int, "count": int}`` where
        ``ce`` is the shard-weighted mean cross entropy of the batch.
        """
        n = len(images)
        self._weights.copy_from(self.model.state_dict())
        np.copyto(self._batch.arrays["images"][:n], images)
        self._batch.arrays["labels"][:n] = labels

        n_shards = min(self.workers, n)
        bounds = [n * i // n_shards for i in range(n_shards + 1)]
        tasks = [(k, bounds[k], bounds[k + 1]) for k in range(n_shards)]
        results = self.pool.run_tasks(tasks)

        self._reduce_gradients(tasks, n)
        self._reduce_batchnorm(tasks, results, n)

        if n_shards == 1:
            ce = results[0][0]
        else:
            ce = sum(((b - a) / n) * results[k][0]
                     for k, (_, a, b) in zip(range(n_shards), tasks))
        correct = sum(r[1] for r in results)
        return {"ce": ce, "correct": correct, "count": n}

    def _reduce_gradients(self, tasks, n: int) -> None:
        """``p.grad = Σ_k (n_k/n) g_k`` in shard order (bit-deterministic)."""
        single = len(tasks) == 1
        scales = [np.float32((b - a) / n) for _, a, b in tasks]
        for name, param in self.model.named_parameters():
            if single:
                param.grad = np.array(self._grads[0].arrays[name], copy=True)
                continue
            grad = scales[0] * self._grads[0].arrays[name]
            for k in range(1, len(tasks)):
                grad += scales[k] * self._grads[k].arrays[name]
            param.grad = grad

    def _reduce_batchnorm(self, tasks, results, n: int) -> None:
        """Fold per-shard batch statistics into the parent running stats.

        One shard: the worker's statistics are applied verbatim, exactly
        replicating the in-forward update of ``BatchNorm2d`` (bitwise).
        Several shards: means pool linearly and variances pool through
        ``E[x²] − E[x]²`` — exact in real arithmetic for the full batch.
        """
        paths = results[0][2].keys() if results else ()
        for path in paths:
            shard_stats = [r[2][path] for r in results]
            total = sum(s[2] for s in shard_stats)
            if len(shard_stats) == 1:
                mean_c, var_c, _ = shard_stats[0]
            else:
                weights = [s[2] / total for s in shard_stats]
                mean64 = sum(w * s[0].astype(np.float64)
                             for w, s in zip(weights, shard_stats))
                sq64 = sum(w * (s[1].astype(np.float64)
                                + s[0].astype(np.float64) ** 2)
                           for w, s in zip(weights, shard_stats))
                mean_c = mean64.astype(np.float32)
                var_c = np.maximum(sq64 - mean64 ** 2, 0.0).astype(np.float32)
            module = self.model.get_module(path)
            m = module.momentum
            unbiased = var_c * total / max(total - 1, 1)
            object.__setattr__(module, "last_batch_stats",
                               (mean_c, var_c, total))
            object.__setattr__(module, "running_mean",
                               (1 - m) * module.running_mean + m * mean_c)
            object.__setattr__(module, "running_var",
                               (1 - m) * module.running_var + m * unbiased)

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the pool fell back to serial execution (see supervisor)."""
        return self.pool is not None and self.pool.degraded

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
        if self._weights is not None:
            self._weights.unlink()
        if self._batch is not None:
            self._batch.unlink()
        for bundle in self._grads:
            bundle.unlink()

    def __enter__(self) -> "ShardedTrainingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
