"""Sharded data-parallel fine-tuning with an overlapped bucketed all-reduce.

Architecture (one session = one worker pool + one set of shared segments):

* **Weights** live in one shared segment. The *parent model's parameters
  are bound to the views* and the optimizer updates them in place, so the
  optimizer step itself is the broadcast — no per-step weight copy. A
  full re-copy happens only when something rebinds the parameters away
  from the views (sentinel rewind via ``load_state_dict``; filter surgery
  closes the session entirely).
* **Control block** (parent → workers): ``step``, ``mode``, batch size
  and shard ``bounds``. The parent writes the step payload first and the
  step counter last; a worker reacts to the counter changing, which makes
  the counter the control block's publication barrier.
* **Gradient buckets** (workers → parent): per shard, one flat float32
  array laid out by a :class:`~repro.parallel.bucket.BucketPlan`, plus a
  per-bucket seqlock word. Backward accumulates *directly into the
  bucket views* (``Tensor.grad_sink``) and an ``on_leaf`` hook marks each
  bucket ready the moment its last parameter's gradient is final — so
  the parent reduces bucket *i* while workers are still backpropagating
  bucket *i+1*. Reduction is in-place into a preallocated parent-side
  accumulator; ``param.grad`` is a view into it.
* **Standing pipeline**: the pool dispatches one long-running task per
  seat (:meth:`~repro.parallel.supervisor.SupervisedWorkerPool.start_pipeline`);
  each seat loops over the control block for the life of the session,
  computing its *group* of logical shards in ascending shard order. Every
  batch costs one control-block write instead of a ``run_tasks``
  round-trip. Supervision still applies: the parent pumps the pipeline
  from its reduction wait loop, a killed worker is respawned and re-enters
  the loop (recomputing the in-flight step from the unchanged shared
  weights — bit-identical bytes), and an exhausted budget degrades the
  pool, after which the *session* completes steps serially in the parent
  through the same publish/reduce code path.
* Optional **int8 gradient transport** (``transport="int8"``): workers
  additionally publish each bucket as int8 codes under a power-of-two
  scale whose float32 dequantization is bit-exact (see
  :mod:`repro.parallel.bucket`); lossy only through quantization
  rounding, still deterministic, off by default.

Per step the parent reduces ``g = Σ_k (n_k/n) · g_k`` in shard order,
folds the per-shard batch-norm statistics into the running stats (exact
pooling via ``E[x²]``, over the *union* of shards that produced stats),
and leaves ``param.grad`` pointing into the reduction accumulator for
the fused regularizer and SGD step in the parent.

Determinism contract
--------------------
``workers`` is a *logical* shard count and part of the numerics: shard
boundaries, gradient reduction order, bucket layout and batch-norm
pooling all follow from it. Fixed ``(workers, seed)`` ⇒ bit-reproducible
training history, regardless of how many physical processes execute the
shards, which seat a shard lands on, how workers die and respawn, or
whether the pool degrades to the serial path. With ``workers=1`` the
scaling and pooling collapse to identities, making the run bitwise equal
to the serial fused-regularizer path (pinned by
``tests/parallel/test_sharded_trainer.py``). Different worker counts are
*different* (equally valid) numerics, exactly like changing the device
count under DDP with unsynced batch norm.
"""

from __future__ import annotations

import time

import numpy as np

from .bucket import (DEFAULT_BUCKET_BYTES, MODE_RAW, BucketPlan,
                     dequantize_bucket, mark_ready, mark_writing,
                     quantize_bucket, seq_ready, seq_writing)

__all__ = ["TrainingService", "ShardedTrainingSession", "PIPELINE_TASK"]

#: Tag of the standing per-seat task dispatched through the supervisor.
PIPELINE_TASK = "__repro.parallel.shard-pipeline__"

GRAD_TRANSPORTS = ("fp32", "int8")


def _bn_layout(sizes: list[int]) -> tuple[list[tuple[int, int]], int]:
    """Concatenated per-module channel slices of the BN stat arrays."""
    slices = []
    offset = 0
    for size in sizes:
        slices.append((offset, offset + size))
        offset += size
    return slices, offset


class TrainingService:
    """Worker-side service: the standing per-seat training loop.

    The model parameters are bound to the shared weight views, so the
    parent's in-place optimizer updates are visible without any message
    passing; shard gradients leave through the per-shard bucket segments
    while backward is still running. Only the end-of-session telemetry
    summary travels over the result channel.
    """

    def __init__(self, arch: dict, weight_spec, input_shape, batch_spec,
                 control_spec, shard_specs, bucket_bytes: int,
                 transport: str):
        from ..models import build_model
        from .scoring import _bind_state_views
        from .shm import SharedArrayBundle

        arch = dict(arch)
        model = build_model(arch.pop("name"), **arch)
        self._weights = SharedArrayBundle.attach(weight_spec)
        state = self._weights.arrays
        try:
            _bind_state_views(model, state)
        except ValueError:
            from ..io.checkpoint import conform_to_state
            conform_to_state(model, dict(state), tuple(input_shape))
            _bind_state_views(model, state)
        model.train()
        self.model = model
        self.transport = transport
        self._batch = SharedArrayBundle.attach(batch_spec)
        self._control = SharedArrayBundle.attach(control_spec)
        self._shards = [SharedArrayBundle.attach(spec)
                        for spec in shard_specs]
        from ..nn import BatchNorm2d
        self._bn_modules = [(path, module)
                            for path, module in model.named_modules()
                            if isinstance(module, BatchNorm2d)]
        self._bn_slices, _ = _bn_layout(
            [m.num_features for _, m in self._bn_modules])
        self._params = list(model.named_parameters())
        self.plan = BucketPlan([(name, p.data.shape)
                                for name, p in self._params],
                               target_bytes=bucket_bytes)
        # Per (shard, param): the bucket-region view backward writes into.
        self._sinks = [
            {name: self.plan.param_view(bundle.arrays["grads"], name)
             for name, _ in self._params}
            for bundle in self._shards
        ]
        self._bucket_of = {id(param): self.plan.bucket_of(name)
                           for name, param in self._params}

    def close(self) -> None:
        """Drop this process's shared-memory mappings (parent-side use)."""
        self._weights.close()
        self._batch.close()
        self._control.close()
        for bundle in self._shards:
            bundle.close()

    # ------------------------------------------------------------------
    def handle(self, task):
        if isinstance(task, tuple) and task and task[0] == PIPELINE_TASK:
            return self._run_loop(tuple(task[1]))
        raise ValueError(f"unexpected training task {task!r}; the sharded "
                         "trainer dispatches standing pipeline tasks only")

    def _run_loop(self, shard_ids: tuple[int, ...]) -> dict:
        """The standing per-seat loop: one iteration per control step.

        Idempotent mid-flight by construction: a respawned replacement
        re-enters here, observes the current control step and recomputes
        it from the unchanged shared weights, republishing bit-identical
        bytes (the seqlock words make any half-published predecessor
        state invisible to the parent).
        """
        control = self._control.arrays
        step_word = control["step"]
        steps = 0
        compute_s = 0.0
        publish_s = 0.0
        last = 0
        idle = 0
        while True:
            step = int(step_word[0])
            if step <= last:
                # Short sleeps while a step is expected imminently, longer
                # ones when idle (epoch boundaries, parent-side eval) so a
                # waiting seat doesn't steal cycles on small machines.
                idle += 1
                time.sleep(0.0002 if idle < 50 else 0.002)
                continue
            idle = 0
            if int(control["mode"][0]) == 1:
                return {"steps": steps, "compute_s": round(compute_s, 4),
                        "publish_s": round(publish_s, 4)}
            last = step
            n = int(control["n"][0])
            n_shards = int(control["n_shards"][0])
            bounds = control["bounds"]
            for shard in shard_ids:
                if shard >= n_shards:
                    continue
                c_s, p_s = self.run_shard(shard, step, int(bounds[shard]),
                                          int(bounds[shard + 1]), n)
                compute_s += c_s
                publish_s += p_s
            steps += 1

    # ------------------------------------------------------------------
    def run_shard(self, shard: int, step: int, start: int, stop: int,
                  n: int) -> tuple[float, float]:
        """Compute and publish one shard of one step (idempotent).

        Returns ``(compute_seconds, publish_seconds)`` telemetry. Also
        the serial execution path after a pool degrade: the parent calls
        it directly on a parent-side service instance, flowing through
        the exact same publish/reduce bytes as the workers.
        """
        from ..nn import cross_entropy
        from ..tensor import Tensor

        t0 = time.perf_counter()
        bundle = self._shards[shard].arrays
        seq = bundle["seq"]
        writing = seq_writing(step)
        bundle["done"][0] = writing
        bundle["compute_done"][0] = writing
        for index in range(len(self.plan)):
            mark_writing(seq, index, step)

        sinks = self._sinks[shard]
        countdown = [len(b.names) for b in self.plan.buckets]
        model = self.model
        for name, param in self._params:
            param.grad_sink = sinks[name]
        model.zero_grad()
        for _, module in self._bn_modules:
            object.__setattr__(module, "last_batch_stats", None)

        images = self._batch.arrays["images"][start:stop]
        labels = np.array(self._batch.arrays["labels"][start:stop],
                          copy=True)
        logits = model(Tensor(images))
        ce = cross_entropy(logits, labels)

        publish_box = [0.0]
        bucket_of = self._bucket_of

        def on_leaf(tensor):
            index = bucket_of.get(id(tensor))
            if index is None:
                return
            countdown[index] -= 1
            if countdown[index] == 0:
                t_pub = time.perf_counter()
                self._publish_bucket(bundle, seq, index, step)
                publish_box[0] += time.perf_counter() - t_pub

        ce.backward(on_leaf=on_leaf)
        t1 = time.perf_counter()
        bundle["compute_done"][0] = seq_ready(step)

        # Tail publish: parameters outside the backward graph still owe
        # their (zero) region to the bucket countdowns.
        for name, param in self._params:
            if param.grad is None:
                sinks[name][:] = 0.0
                index = self.plan.bucket_of(name)
                countdown[index] -= 1
                if countdown[index] == 0:
                    self._publish_bucket(bundle, seq, index, step)

        mean_view = bundle["bn_mean"]
        var_view = bundle["bn_var"]
        count_view = bundle["bn_count"]
        present = bundle["bn_present"]
        for i, (_, module) in enumerate(self._bn_modules):
            stats = module.last_batch_stats
            if stats is None:
                present[i] = 0
                continue
            lo, hi = self._bn_slices[i]
            mean_view[lo:hi] = stats[0]
            var_view[lo:hi] = stats[1]
            count_view[i] = stats[2]
            present[i] = 1
        bundle["ce"][0] = float(ce.data)
        bundle["correct"][0] = int(
            (logits.data.argmax(axis=1) == labels).sum())
        bundle["done"][0] = seq_ready(step)
        t2 = time.perf_counter()
        return (t1 - t0) - publish_box[0], publish_box[0] + (t2 - t1)

    def _publish_bucket(self, bundle, seq, index: int, step: int) -> None:
        """Seal one bucket: optional int8 encode, then the ready mark."""
        if self.transport == "int8":
            flat = self.plan.bucket_view(bundle["grads"], index)
            codes = self.plan.bucket_view(bundle["q"], index)
            mode, scale = quantize_bucket(flat, codes)
            bundle["qmode"][index] = mode
            bundle["qscale"][index] = scale
        mark_ready(seq, index, step)


class ShardedTrainingSession:
    """Parent-side handle owning the pool, pipeline and shared buffers.

    Created lazily by the :class:`~repro.core.trainer.Trainer` on the
    first batch (when the batch geometry is known) and reused for the
    whole ``train()`` call. ``run_batch`` leaves ``param.grad`` as views
    into the session's preallocated reduction accumulator — callers must
    treat the gradients as borrowed until the next ``run_batch``.
    """

    def __init__(self, model, workers: int, capacity: int,
                 sample_shape: tuple[int, ...],
                 processes: int | None = None, supervision=None,
                 on_event=None, bucket_bytes: int = DEFAULT_BUCKET_BYTES,
                 transport: str = "fp32"):
        from ..nn import BatchNorm2d
        from .pool import resolve_processes
        from .scoring import _bind_state_views
        from .shm import SharedArrayBundle
        from .supervisor import SupervisedWorkerPool

        arch = getattr(model, "arch", None)
        if not isinstance(arch, dict) or "name" not in arch:
            raise ValueError(
                "sharded training rebuilds the model inside each worker "
                "and needs an architecture recipe: build the model via "
                "repro.models.build_model or set model.arch")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if transport not in GRAD_TRANSPORTS:
            raise ValueError(f"unknown grad transport {transport!r}; "
                             f"expected one of {GRAD_TRANSPORTS}")
        self.model = model
        self.workers = workers
        self.capacity = capacity
        self.sample_shape = tuple(sample_shape)
        self.transport = transport
        self._arch = dict(arch)
        self._bucket_bytes = int(bucket_bytes)

        self._named_params = list(model.named_parameters())
        self.plan = BucketPlan([(name, p.data.shape)
                                for name, p in self._named_params],
                               target_bytes=self._bucket_bytes)
        self._bn_modules = [(path, module)
                            for path, module in model.named_modules()
                            if isinstance(module, BatchNorm2d)]
        self._bn_slices, bn_total = _bn_layout(
            [m.num_features for _, m in self._bn_modules])

        n_buckets = len(self.plan)
        total = self.plan.total_floats
        max_bucket = max(b.size for b in self.plan.buckets)
        # Preallocated reduction state: the accumulator the reduced
        # gradients land in (param.grad views into it) and the scratch
        # buffers of the in-place bucket ops. Nothing per-step allocates.
        self._acc = np.zeros(total, np.float32)
        self._scratch = np.zeros(max_bucket, np.float32)
        self._dequant = (np.zeros(max_bucket, np.float32)
                         if transport == "int8" else None)
        self._grad_views = {name: self.plan.param_view(self._acc, name)
                            for name, _ in self._named_params}
        self.step = 0
        self.steps_run = 0
        #: Cumulative parent-side per-phase seconds across run_batch calls
        #: (the trainer adds its own "step" phase on top).
        self.phase_totals = {"broadcast": 0.0, "compute": 0.0,
                             "publish": 0.0, "reduce": 0.0}

        self._weights = None
        self._batch = None
        self._control = None
        self._shards = []
        self.pool = None
        self.pipeline = None
        self._serial = None
        self._bound = False
        try:
            state = model.state_dict()
            self._weights = SharedArrayBundle.create(state)
            # Zero-broadcast weights: the parent parameters become views
            # of the shared segment; every in-place optimizer update is
            # immediately visible to all workers.
            _bind_state_views(model, self._weights.arrays)
            self._bound = True
            self._batch = SharedArrayBundle.create({
                "images": np.zeros((capacity,) + self.sample_shape,
                                   np.float32),
                "labels": np.zeros(capacity, np.intp),
            })
            self._control = SharedArrayBundle.create_empty({
                "step": ((1,), "<i8"),
                "mode": ((1,), "<i8"),
                "n": ((1,), "<i8"),
                "n_shards": ((1,), "<i8"),
                "bounds": ((workers + 1,), "<i8"),
            })
            layout = {
                "grads": ((total,), "<f4"),
                "seq": ((n_buckets,), "<i8"),
                "bn_mean": ((bn_total,), "<f4"),
                "bn_var": ((bn_total,), "<f4"),
                "bn_count": ((len(self._bn_modules),), "<i8"),
                "bn_present": ((len(self._bn_modules),), "<i8"),
                "ce": ((1,), "<f8"),
                "correct": ((1,), "<i8"),
                "compute_done": ((1,), "<i8"),
                "done": ((1,), "<i8"),
            }
            if transport == "int8":
                layout["q"] = ((total,), "|i1")
                layout["qscale"] = ((n_buckets,), "<f8")
                layout["qmode"] = ((n_buckets,), "<i8")
            self._shards = [SharedArrayBundle.create_empty(layout)
                            for _ in range(workers)]
            self.physical_processes = resolve_processes(workers, processes)
            seats = self.physical_processes
            # Round-robin shard groups: every seat gets one of the
            # earliest shards, so shard-ordered reduction can start as
            # soon as possible; each seat computes its group in ascending
            # shard order. Results are independent of the grouping.
            groups = [tuple(range(seat, workers, seats))
                      for seat in range(seats)]
            self.pool = SupervisedWorkerPool(
                seats, TrainingService,
                (self._arch, self._weights.spec, self.sample_shape,
                 self._batch.spec, self._control.spec,
                 tuple(s.spec for s in self._shards),
                 self._bucket_bytes, transport),
                supervision=supervision, on_event=on_event)
            self.pipeline = self.pool.start_pipeline(
                [(PIPELINE_TASK, group) for group in groups])
        except BaseException:
            # Don't leak the segments when pool start-up fails (e.g. a
            # worker raises during attach): no other owner exists.
            self.close()
            raise

    # ------------------------------------------------------------------
    def compatible(self, batch_shape: tuple[int, ...]) -> bool:
        return (batch_shape[0] <= self.capacity
                and tuple(batch_shape[1:]) == self.sample_shape)

    def _ensure_bound(self) -> None:
        """Re-establish the weight-view binding if something broke it.

        ``load_state_dict`` (sentinel rewind) rebinds ``param.data`` to
        private arrays; the identity check notices and re-broadcasts the
        full state once — the only remaining full weight copy, paid at
        rewind points instead of every step.
        """
        from .scoring import _bind_state_views
        views = self._weights.arrays
        for name, param in self._named_params:
            if param.data is not views[name]:
                self._weights.copy_from(self.model.state_dict())
                _bind_state_views(self.model, views)
                return

    def run_batch(self, images: np.ndarray, labels: np.ndarray) -> dict:
        """One overlapped forward/backward/all-reduce over the pipeline.

        Returns ``{"ce", "correct", "count", "phases"}`` where ``ce`` is
        the shard-weighted mean cross entropy and ``phases`` the
        parent-side wall-clock split of this step (``broadcast`` /
        ``compute`` / ``publish`` / ``reduce`` seconds).
        """
        t0 = time.perf_counter()
        n = len(images)
        self._ensure_bound()
        np.copyto(self._batch.arrays["images"][:n], images)
        self._batch.arrays["labels"][:n] = labels
        n_shards = min(self.workers, n)
        bounds = [n * i // n_shards for i in range(n_shards + 1)]
        control = self._control.arrays
        control["n"][0] = n
        control["n_shards"][0] = n_shards
        control["bounds"][:n_shards + 1] = bounds
        self.step += 1
        step = self.step
        control["step"][0] = step       # publication barrier: written last
        if self.pipeline is not None and not self.degraded:
            self.pipeline.bump_deadlines()
        phases = {"broadcast": time.perf_counter() - t0,
                  "compute": 0.0, "publish": 0.0, "reduce": 0.0}

        scales = [np.float32((bounds[k + 1] - bounds[k]) / n)
                  for k in range(n_shards)]
        self._reduce(step, n_shards, bounds, n, scales, phases)
        t_tail = time.perf_counter()
        ce_values, correct, shard_stats = self._read_results(
            step, n_shards, bounds, n)
        self._reduce_batchnorm(shard_stats)
        for name, param in self._named_params:
            param.grad = self._grad_views[name]
        phases["reduce"] += time.perf_counter() - t_tail

        if n_shards == 1:
            ce = ce_values[0]
        else:
            ce = sum(((bounds[k + 1] - bounds[k]) / n) * ce_values[k]
                     for k in range(n_shards))
        self.steps_run += 1
        for key, value in phases.items():
            self.phase_totals[key] += value
        return {"ce": ce, "correct": int(sum(correct)), "count": n,
                "phases": phases}

    # ------------------------------------------------------------------
    def _reduce(self, step: int, n_shards: int, bounds: list[int], n: int,
                scales, phases: dict) -> None:
        """Incremental shard-ordered all-reduce overlapping the workers.

        For every bucket a ``next_shard`` pointer walks the shards in
        order; shard ``k`` is consumed the moment its seqlock says ready
        *and* ``k-1`` has been consumed — preserving the exact reduction
        order (and bytes) of the old monolithic loop while letting the
        parent work during backward. Wait time is attributed to the
        ``compute`` phase until every shard flagged compute-done, to
        ``publish`` after; the in-place bucket ops land in ``reduce``.
        """
        target = seq_ready(step)
        if self.degraded:
            t_serial = time.perf_counter()
            self._serial_complete(step, n_shards, bounds, n)
            phases["compute"] += time.perf_counter() - t_serial
        n_buckets = len(self.plan)
        next_shard = [0] * n_buckets
        seqs = [self._shards[k].arrays["seq"] for k in range(n_shards)]
        compute_flags = [self._shards[k].arrays["compute_done"]
                         for k in range(n_shards)]
        done_flags = [self._shards[k].arrays["done"]
                      for k in range(n_shards)]
        computing = True
        idle = 0
        next_pump = time.perf_counter() + 0.005
        while True:
            progress = False
            for index in range(n_buckets):
                k = next_shard[index]
                while k < n_shards and int(seqs[k][index]) == target:
                    t_op = time.perf_counter()
                    clean = self._consume(index, k, n_shards, scales, step)
                    phases["reduce"] += time.perf_counter() - t_op
                    if not clean:
                        break       # torn read: the writer restarted it
                    k += 1
                    next_shard[index] = k
                    progress = True
            if (all(p == n_shards for p in next_shard)
                    and all(int(flag[0]) == target for flag in done_flags)):
                break
            if computing:
                computing = any(int(flag[0]) != target
                                for flag in compute_flags)
            if progress:
                idle = 0
                continue
            t_wait = time.perf_counter()
            if (self.pipeline is not None and not self.degraded
                    and t_wait > next_pump):
                self.pipeline.pump(wait=0.0)
                next_pump = time.perf_counter() + 0.005
                if self.degraded:
                    self._serial_complete(step, n_shards, bounds, n)
                    phases["compute"] += time.perf_counter() - t_wait
                    continue
            idle += 1
            time.sleep(0.0002 if idle < 5 else 0.001)
            phases["compute" if computing else "publish"] += (
                time.perf_counter() - t_wait)

    def _consume(self, index: int, k: int, n_shards: int, scales,
                 step: int) -> bool:
        """Fold shard ``k``'s bucket into the accumulator, torn-read safe.

        Returns False when the seqlock reread shows the bucket was being
        rewritten underneath us (a respawned worker recomputing the
        step); the caller retries — every in-place op below is safe to
        redo because the accumulator region is only *read* after the
        reread passed.
        """
        bucket = self.plan.buckets[index]
        bundle = self._shards[k].arrays
        seq = bundle["seq"]
        acc_bucket = self._acc[bucket.start:bucket.stop]
        shm_read_done = False
        if (self.transport == "int8"
                and int(bundle["qmode"][index]) != MODE_RAW):
            scale = float(bundle["qscale"][index])
            codes = self.plan.bucket_view(bundle["q"], index)
            source = self._dequant[:bucket.size]
            dequantize_bucket(codes, scale, source)
            if int(seq[index]) != seq_ready(step):
                return False
            shm_read_done = True
        else:
            source = self.plan.bucket_view(bundle["grads"], index)
        if n_shards == 1:
            # copyto, not multiply-by-1.0: preserves -0.0 and NaN
            # payloads, keeping workers=1 bitwise equal to the serial
            # fused loop.
            np.copyto(acc_bucket, source)
            return shm_read_done or int(seq[index]) == seq_ready(step)
        if k == 0:
            np.multiply(source, scales[0], out=acc_bucket)
            return shm_read_done or int(seq[index]) == seq_ready(step)
        scratch = self._scratch[:bucket.size]
        np.multiply(source, scales[k], out=scratch)
        if not (shm_read_done or int(seq[index]) == seq_ready(step)):
            return False
        np.add(acc_bucket, scratch, out=acc_bucket)
        return True

    def _read_results(self, step: int, n_shards: int, bounds: list[int],
                      n: int):
        """Read the per-shard scalars and BN stats (done-flag seqlock).

        ``_reduce`` only returns once every done flag reads ready, so the
        loop normally runs once; it re-runs when a respawned replacement
        is recomputing the current step underneath us (same bytes, but
        the flag is transiently odd), and falls back to the serial path
        if that replacement dies too.
        """
        target = seq_ready(step)
        attempts = 0
        while True:
            attempts += 1
            if attempts > 3:
                if self.pipeline is not None and not self.degraded:
                    self.pipeline.pump(wait=0.001)
                if self.degraded:
                    self._serial_complete(step, n_shards, bounds, n)
            ce_values = []
            correct = []
            shard_stats = []
            for k in range(n_shards):
                arrays = self._shards[k].arrays
                ce_values.append(float(arrays["ce"][0]))
                correct.append(int(arrays["correct"][0]))
                stats = {}
                for i, (path, _) in enumerate(self._bn_modules):
                    if int(arrays["bn_present"][i]):
                        lo, hi = self._bn_slices[i]
                        stats[path] = (
                            np.array(arrays["bn_mean"][lo:hi], copy=True),
                            np.array(arrays["bn_var"][lo:hi], copy=True),
                            int(arrays["bn_count"][i]))
                shard_stats.append(stats)
            if all(int(self._shards[k].arrays["done"][0]) == target
                   for k in range(n_shards)):
                return ce_values, correct, shard_stats

    def _reduce_batchnorm(self, shard_stats: list[dict]) -> None:
        """Fold per-shard batch statistics into the parent running stats.

        One shard present: its statistics apply verbatim, exactly
        replicating the in-forward update of ``BatchNorm2d`` (bitwise).
        Several: means pool linearly and variances pool through
        ``E[x²] − E[x]²`` — exact in real arithmetic for the full batch.
        A module's stats are pooled over the *union* of shards that
        produced them; shards missing a path are simply skipped.
        """
        for path, module in self._bn_modules:
            present = [stats[path] for stats in shard_stats
                       if path in stats]
            if not present:
                continue
            total = sum(s[2] for s in present)
            if len(present) == 1:
                mean_c, var_c, _ = present[0]
            else:
                weights = [s[2] / total for s in present]
                mean64 = sum(w * s[0].astype(np.float64)
                             for w, s in zip(weights, present))
                sq64 = sum(w * (s[1].astype(np.float64)
                                + s[0].astype(np.float64) ** 2)
                           for w, s in zip(weights, present))
                mean_c = mean64.astype(np.float32)
                var_c = np.maximum(sq64 - mean64 ** 2,
                                   0.0).astype(np.float32)
            m = module.momentum
            unbiased = var_c * total / max(total - 1, 1)
            object.__setattr__(module, "last_batch_stats",
                               (mean_c, var_c, total))
            object.__setattr__(module, "running_mean",
                               (1 - m) * module.running_mean + m * mean_c)
            object.__setattr__(module, "running_var",
                               (1 - m) * module.running_var + m * unbiased)

    # ------------------------------------------------------------------
    # Serial completion after a pool degrade
    # ------------------------------------------------------------------
    def _serial_service(self) -> TrainingService:
        if self._serial is None:
            self._serial = TrainingService(
                self._arch, self._weights.spec, self.sample_shape,
                self._batch.spec, self._control.spec,
                tuple(s.spec for s in self._shards),
                self._bucket_bytes, self.transport)
        return self._serial

    def _serial_complete(self, step: int, n_shards: int,
                         bounds: list[int], n: int) -> None:
        """Compute every unpublished shard of ``step`` in the parent.

        Runs the identical :meth:`TrainingService.run_shard` publish path
        on a parent-side service instance, so a degraded run stays
        bit-identical to a healthy one — partially published shards from
        a dead worker are simply recomputed in full (same bytes; the
        weights cannot have changed mid-step).
        """
        service = self._serial_service()
        for k in range(n_shards):
            if int(self._shards[k].arrays["done"][0]) != seq_ready(step):
                service.run_shard(k, step, bounds[k], bounds[k + 1], n)

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the pool fell back to parent-side serial execution."""
        return self.pool is not None and self.pool.degraded

    def close(self) -> None:
        if (self.pipeline is not None and self.pool is not None
                and not self.pool.degraded and not self.pool._closed
                and self._control is not None):
            try:
                # Flip the control block to STOP so the standing tasks
                # return their summaries, then drain them; stragglers are
                # killed by pool.close() below.
                self._control.arrays["mode"][0] = 1
                self.step += 1
                self._control.arrays["step"][0] = self.step
                self.pipeline.finish(timeout=5.0)
            except Exception:   # noqa: BLE001 - teardown must not raise
                pass
        self.pipeline = None
        if self.pool is not None:
            self.pool.close()
        if self._serial is not None:
            self._serial.close()
            self._serial = None
        if self._bound:
            # Un-alias the parent model from the shared views before the
            # segment is unlinked — any later touch of a view of an
            # unlinked segment is a SIGBUS. state_dict() copies, and
            # load_state_dict rebinds onto private arrays.
            self.model.load_state_dict(self.model.state_dict())
            self._bound = False
        if self._weights is not None:
            self._weights.unlink()
        if self._batch is not None:
            self._batch.unlink()
        if self._control is not None:
            self._control.unlink()
        for bundle in self._shards:
            bundle.unlink()

    def __enter__(self) -> "ShardedTrainingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
