"""Persistent worker-process pool with crash detection.

The pool separates two notions that are usually conflated:

* **logical workers** — how the *caller* shards its work (the ``workers=N``
  knob). This is part of the determinism contract: the shard boundaries
  and reduction order follow from N, never from scheduling.
* **physical processes** — how many OS processes actually execute the
  shards: ``min(workers, usable CPUs)`` by default (override with the
  ``REPRO_PARALLEL_PROCESSES`` environment variable or the ``processes=``
  argument). On an oversubscribed or single-CPU host the same N-way
  sharding runs on fewer processes with bit-identical results, because
  task results are reassembled by task index, not by arrival order.

Workers run a *service*: a picklable class instantiated once per process
(``service(*init_args)``) whose ``handle(task)`` method is called per
task. Heavy state (model weights, image banks) travels through
:mod:`repro.parallel.shm` specs inside ``init_args``, so it is mapped
once per process, not per task.

Any worker-side exception, unexpected death, or failed initialisation
surfaces in the parent as :class:`ParallelExecutionError` with the remote
traceback or exit code; the parent's own state is never corrupted.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import traceback

from .errors import ParallelExecutionError

__all__ = ["WorkerPool", "EchoService", "CRASH_TASK", "resolve_processes"]

#: Sentinel task that makes a worker die without reporting a result.
#: Used by the resilience drills and tests to exercise crash detection.
CRASH_TASK = "__repro.parallel.crash__"

_READY, _OK, _ERR, _INIT_ERR = "ready", "ok", "err", "init-err"


def resolve_processes(workers: int, processes: int | None = None) -> int:
    """Physical process count for ``workers`` logical shards.

    Defaults to ``min(workers, usable CPUs)`` where "usable" honours the
    CPU affinity mask when available. Results do not depend on this
    number — only wall-clock does.
    """
    if processes is None:
        env = os.environ.get("REPRO_PARALLEL_PROCESSES")
        if env:
            processes = int(env)
    if processes is None:
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cpus = os.cpu_count() or 1
        processes = min(workers, max(1, cpus))
    return max(1, min(int(processes), workers))


class EchoService:
    """Trivial service returning its tasks verbatim (tests and drills)."""

    def __init__(self, tag: str = ""):
        self.tag = tag

    def handle(self, task):
        if isinstance(task, dict) and task.get("raise"):
            raise ValueError(task["raise"])
        return (self.tag, task)


def _worker_main(worker_id, start_method, service_cls, init_args, task_q,
                 result_q):
    try:
        from . import shm
        # Spawn workers own a private resource tracker that must not tear
        # shared segments down on worker exit; fork workers share the
        # parent's tracker, which must be left alone (see shm module doc).
        shm._UNTRACK_ON_ATTACH = start_method == "spawn"
        service = service_cls(*init_args)
    except BaseException:  # noqa: BLE001 - report any init failure
        result_q.put((_INIT_ERR, worker_id, traceback.format_exc()))
        return
    result_q.put((_READY, worker_id, None))
    while True:
        message = task_q.get()
        if message is None:
            return
        index, task = message
        if task == CRASH_TASK:
            os._exit(17)
        try:
            result_q.put((_OK, index, service.handle(task)))
        except BaseException:  # noqa: BLE001 - ship traceback to parent
            result_q.put((_ERR, index, traceback.format_exc()))


class WorkerPool:
    """Fixed set of worker processes running one service each.

    Parameters
    ----------
    processes:
        Number of worker processes (see :func:`resolve_processes`).
    service_cls / init_args:
        Service class and its constructor arguments; both must be
        picklable (shared-memory state goes in as :class:`ShmSpec`).
    start_method:
        ``"fork"`` (default where available — instant start, inherits
        loaded modules) or ``"spawn"``.
    poll_seconds:
        Liveness-check interval while waiting for results.
    """

    def __init__(self, processes: int, service_cls, init_args: tuple = (),
                 start_method: str | None = None, poll_seconds: float = 0.2):
        if processes <= 0:
            raise ValueError("processes must be positive")
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        ctx = mp.get_context(start_method)
        self.processes = processes
        self._poll = poll_seconds
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._closed = False
        self._procs = [
            ctx.Process(target=_worker_main,
                        args=(i, start_method, service_cls, init_args,
                              self._task_q, self._result_q),
                        daemon=True, name=f"repro-worker-{i}")
            for i in range(processes)
        ]
        for proc in self._procs:
            proc.start()
        self._await_ready()

    # ------------------------------------------------------------------
    def _await_ready(self) -> None:
        ready = 0
        while ready < self.processes:
            kind, _, payload = self._collect_one()
            if kind == _INIT_ERR:
                self.close()
                raise ParallelExecutionError(
                    f"worker failed to initialise:\n{payload}")
            if kind == _READY:
                ready += 1

    def _collect_one(self):
        """Next result-queue message, watching for silent worker deaths."""
        while True:
            try:
                return self._result_q.get(timeout=self._poll)
            except queue_mod.Empty:
                for proc in self._procs:
                    if proc.exitcode is not None:
                        self.close()
                        raise ParallelExecutionError(
                            f"worker {proc.name} died with exit code "
                            f"{proc.exitcode} before reporting a result")

    # ------------------------------------------------------------------
    def run_tasks(self, tasks: list) -> list:
        """Execute ``tasks`` across the pool; results in task order.

        Tasks are pulled greedily by whichever process is free, so the
        schedule is nondeterministic but the returned list is not: slot
        ``i`` always holds the result of ``tasks[i]``.
        """
        if self._closed:
            raise ParallelExecutionError("pool is closed")
        for index, task in enumerate(tasks):
            self._task_q.put((index, task))
        results: list = [None] * len(tasks)
        pending = len(tasks)
        while pending:
            kind, index, payload = self._collect_one()
            if kind == _ERR:
                self.close()
                raise ParallelExecutionError(
                    f"task {index} raised in worker:\n{payload}")
            if kind == _INIT_ERR:  # pragma: no cover - init races a task
                self.close()
                raise ParallelExecutionError(
                    f"worker failed to initialise:\n{payload}")
            results[index] = payload
            pending -= 1
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Terminate the workers and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue gone
                break
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            q.close()
            q.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
