"""Shared-memory ndarray transport between parent and worker processes.

A :class:`SharedArrayBundle` packs a ``{name: ndarray}`` mapping into one
``multiprocessing.shared_memory`` segment. The parent creates the bundle
(one copy of the data), ships the picklable :class:`ShmSpec` descriptor to
the workers, and each worker attaches zero-copy numpy views onto the same
physical pages. Model weights therefore cross the process boundary once at
pool start-up and are *refreshed in place* (``copy_from``) between steps,
never re-pickled.

Layout: entries are packed back to back, each offset rounded up to 64
bytes so every view is cache-line aligned. The spec records name, dtype,
shape and offset per entry; attaching is just ``np.ndarray(shape, dtype,
buffer=shm.buf, offset=off)``.

Lifetime: the creating process owns the segment and must call
:meth:`SharedArrayBundle.unlink` when done; workers only :meth:`close`
their mapping. On attach the segment is deregistered from the child's
``resource_tracker`` — otherwise the first worker to exit would tear the
segment down under everyone else (Python 3.11 has no ``track=False``).
Every created segment is additionally recorded in the
:mod:`repro.parallel.reaper` ledger, so a crash (even SIGKILL) between
``create`` and ``unlink`` leaves a reclaimable record instead of a
permanent kernel-object leak.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from . import reaper

__all__ = ["ShmSpec", "SharedArrayBundle"]

_ALIGN = 64

#: Whether :meth:`SharedArrayBundle.attach` deregisters the segment from
#: this process's resource tracker. Needed in *spawn* workers, whose own
#: tracker would otherwise destroy the segment when the worker exits.
#: Harmful everywhere else: fork workers share the parent's tracker
#: daemon, so unregistering there would strip the parent's legitimate
#: registration. ``WorkerPool`` sets this per worker at start-up.
_UNTRACK_ON_ATTACH = False


@dataclass(frozen=True)
class ShmSpec:
    """Picklable description of one shared segment and the arrays in it."""

    name: str
    entries: tuple[tuple[str, str, tuple[int, ...], int], ...]
    total_bytes: int


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the attaching process's resource tracker from owning ``shm``."""
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SharedArrayBundle:
    """A set of named ndarrays living in one shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory, spec: ShmSpec,
                 owner: bool):
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self.arrays: dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in spec.entries:
            self.arrays[key] = np.ndarray(shape, dtype=np.dtype(dtype),
                                          buffer=shm.buf, offset=offset)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayBundle":
        """Allocate a segment holding copies of ``arrays`` (parent side)."""
        entries = []
        offset = 0
        for key, value in arrays.items():
            value = np.ascontiguousarray(value)
            offset = _aligned(offset)
            entries.append((key, value.dtype.str, value.shape, offset))
            offset += value.nbytes
        total = max(offset, 1)
        shm = shared_memory.SharedMemory(create=True, size=total)
        reaper.register(shm.name)
        spec = ShmSpec(name=shm.name, entries=tuple(entries),
                       total_bytes=total)
        try:
            bundle = cls(shm, spec, owner=True)
            bundle.copy_from(arrays)
        except BaseException:
            # A failure between allocation and handing the bundle to the
            # caller must not leak the segment: nobody else can unlink it.
            try:
                shm.close()
                shm.unlink()
            finally:
                reaper.unregister(shm.name)
            raise
        return bundle

    @classmethod
    def create_empty(cls, layout: dict[str, tuple[tuple[int, ...], str]]
                     ) -> "SharedArrayBundle":
        """Allocate a zero-filled segment from ``{name: (shape, dtype)}``.

        Unlike :meth:`create` no source arrays are materialised or copied:
        freshly mapped shared pages are already zero-filled by the kernel.
        Used for the gradient-bucket and result blocks of the sharded
        trainer, which workers overwrite every step anyway.
        """
        entries = []
        offset = 0
        for key, (shape, dtype) in layout.items():
            dt = np.dtype(dtype)
            offset = _aligned(offset)
            entries.append((key, dt.str, tuple(int(s) for s in shape),
                            offset))
            offset += int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        total = max(offset, 1)
        shm = shared_memory.SharedMemory(create=True, size=total)
        reaper.register(shm.name)
        spec = ShmSpec(name=shm.name, entries=tuple(entries),
                       total_bytes=total)
        try:
            return cls(shm, spec, owner=True)
        except BaseException:
            try:
                shm.close()
                shm.unlink()
            finally:
                reaper.unregister(shm.name)
            raise

    @classmethod
    def attach(cls, spec: ShmSpec,
               untrack: bool | None = None) -> "SharedArrayBundle":
        """Map an existing segment from its spec (worker side).

        ``untrack`` defaults to the process-wide ``_UNTRACK_ON_ATTACH``
        policy, which the worker pool configures per start method.
        """
        shm = shared_memory.SharedMemory(name=spec.name)
        if untrack if untrack is not None else _UNTRACK_ON_ATTACH:
            _untrack(shm)
        try:
            return cls(shm, spec, owner=False)
        except BaseException:
            # A malformed spec (stale entry offsets after a crashed
            # producer, say) raises while building the views; without
            # this close the mapping leaks — and in a spawn worker the
            # still-registered segment would be torn down under the
            # owner when the worker's resource tracker exits.
            try:
                shm.close()
            except BufferError:  # pragma: no cover - partial view alive
                pass
            raise

    # ------------------------------------------------------------------
    def copy_from(self, arrays: dict[str, np.ndarray]) -> None:
        """Refresh the shared views in place from same-shaped arrays."""
        for key, view in self.arrays.items():
            np.copyto(view, arrays[key], casting="same_kind")

    def close(self) -> None:
        """Drop this process's mapping (the views become invalid)."""
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray view still alive
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; implies :meth:`close`)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            reaper.unregister(self.spec.name)
