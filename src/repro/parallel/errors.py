"""Error types of the multi-process execution layer."""

from __future__ import annotations

__all__ = ["ParallelExecutionError"]


class ParallelExecutionError(RuntimeError):
    """A worker process failed (crashed, died, or raised inside a task).

    Raised by :class:`repro.parallel.WorkerPool` whenever a task cannot be
    completed: the worker raised an exception (the remote traceback is
    included in the message), the process died without reporting a result
    (its exit code is included), or initialisation of the worker-side
    service failed. The pool is unusable after this error and must be
    recreated; the parent process and its model state are unaffected.
    """
