"""Error types of the multi-process execution layer."""

from __future__ import annotations

__all__ = ["ParallelExecutionError", "TaskFailedError"]


class ParallelExecutionError(RuntimeError):
    """A worker process failed (crashed, died, or raised inside a task).

    Raised by :class:`repro.parallel.WorkerPool` whenever a task cannot be
    completed: the worker raised an exception (the remote traceback is
    included in the message), the process died without reporting a result
    (its exit code is included), or initialisation of the worker-side
    service failed. The pool is unusable after this error and must be
    recreated; the parent process and its model state are unaffected.

    The supervised pool (:class:`repro.parallel.SupervisedWorkerPool`)
    raises this only for unusable-pool states (closed pool, start-up
    failure); worker deaths and hangs are self-healed instead.
    """


class TaskFailedError(ParallelExecutionError):
    """A task *raised* inside a healthy worker (deterministic bug).

    Distinguished from infrastructure faults because retrying or
    degrading to serial execution would fail identically: the remote
    traceback, carried in the message, is the actionable signal. The
    supervised pool surfaces these immediately instead of burning its
    respawn budget on them.
    """
