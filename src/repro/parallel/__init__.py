"""Multi-process execution layer: class-parallel scoring, sharded training.

Three pillars, all exposed through knobs on the existing APIs
(``ImportanceEvaluator(workers=N)``, ``TrainingConfig(workers=N)``,
``ClassAwarePruningFramework.run(workers=N)``, ``repro run --workers N``):

* :mod:`~repro.parallel.scoring` — per-class Taylor evaluations fanned
  across a persistent worker pool, bit-identical to serial;
* :mod:`~repro.parallel.shard` — data-parallel fine-tuning: batch shards
  are evaluated in workers and their gradients all-reduced into the
  parent's SGD step;
* :mod:`~repro.parallel.pool` / :mod:`~repro.parallel.shm` — the process
  pool and shared-memory ndarray transport underneath both.

See ``docs/performance.md`` for the architecture, the shared-memory
layout and the determinism contract.
"""

from .errors import ParallelExecutionError
from .pool import CRASH_TASK, EchoService, WorkerPool, resolve_processes
from .scoring import (FusedTaylorScorer, ScoringService, ScoringSession,
                      aggregate_scores_fast)
from .shm import SharedArrayBundle, ShmSpec

__all__ = [
    "ParallelExecutionError",
    "WorkerPool",
    "EchoService",
    "CRASH_TASK",
    "resolve_processes",
    "SharedArrayBundle",
    "ShmSpec",
    "FusedTaylorScorer",
    "ScoringService",
    "ScoringSession",
    "aggregate_scores_fast",
    "ShardedTrainingSession",
]


def __getattr__(name):
    # shard.py imports trainer-adjacent modules; load it lazily so
    # importing repro.parallel stays cheap for scoring-only users.
    if name == "ShardedTrainingSession":
        from .shard import ShardedTrainingSession
        return ShardedTrainingSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
