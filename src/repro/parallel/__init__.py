"""Multi-process execution layer: class-parallel scoring, sharded training.

Three pillars, all exposed through knobs on the existing APIs
(``ImportanceEvaluator(workers=N)``, ``TrainingConfig(workers=N)``,
``ClassAwarePruningFramework.run(workers=N)``, ``repro run --workers N``):

* :mod:`~repro.parallel.scoring` — per-class Taylor evaluations fanned
  across a persistent worker pool, bit-identical to serial;
* :mod:`~repro.parallel.shard` — data-parallel fine-tuning: batch shards
  are evaluated in workers and their gradients all-reduced into the
  parent's SGD step;
* :mod:`~repro.parallel.pool` / :mod:`~repro.parallel.shm` — the process
  pool and shared-memory ndarray transport underneath both;
* :mod:`~repro.parallel.supervisor` / :mod:`~repro.parallel.reaper` — the
  self-healing layer: heartbeats, watchdog deadlines, worker respawn with
  deterministic retry, graceful serial fallback, and the shared-memory
  ledger that reclaims segments after crashes (including SIGKILL).

See ``docs/performance.md`` for the architecture and the determinism
contract, and ``docs/supervision.md`` for the fault model and tuning
knobs of the supervision layer.
"""

from .bucket import BucketPlan
from .errors import ParallelExecutionError, TaskFailedError
from .pool import CRASH_TASK, EchoService, WorkerPool, resolve_processes
from .scoring import (FusedTaylorScorer, ScoringService, ScoringSession,
                      aggregate_scores_fast)
from .shm import SharedArrayBundle, ShmSpec
from .supervisor import (HANG_TASK, STALL_HEARTBEAT_TASK,
                         SupervisedWorkerPool, SupervisionConfig,
                         WorkerEvent)

__all__ = [
    "ParallelExecutionError",
    "TaskFailedError",
    "WorkerPool",
    "SupervisedWorkerPool",
    "SupervisionConfig",
    "WorkerEvent",
    "EchoService",
    "CRASH_TASK",
    "HANG_TASK",
    "STALL_HEARTBEAT_TASK",
    "resolve_processes",
    "SharedArrayBundle",
    "ShmSpec",
    "FusedTaylorScorer",
    "ScoringService",
    "ScoringSession",
    "aggregate_scores_fast",
    "BucketPlan",
    "ShardedTrainingSession",
]


def __getattr__(name):
    # shard.py imports trainer-adjacent modules; load it lazily so
    # importing repro.parallel stays cheap for scoring-only users.
    if name == "ShardedTrainingSession":
        from .shard import ShardedTrainingSession
        return ShardedTrainingSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
