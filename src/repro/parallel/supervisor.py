"""Supervised, self-healing worker pool.

:class:`~repro.parallel.pool.WorkerPool` treats any worker fault as
terminal: a crash raises :class:`ParallelExecutionError` and the whole
run dies. This module wraps the same worker/service contract in a
supervision layer that *recovers* instead:

* **heartbeats** — every worker runs a daemon thread stamping a shared
  timestamp slot; a frozen process (SIGSTOP, livelock outside the
  interpreter) goes silent and is detected even when idle;
* **watchdog** — a parent-side thread enforces two deadlines: heartbeat
  staleness and per-task wall-clock. Violators are SIGKILLed, which
  funnels every fault (crash, hang, freeze) into one observable — a dead
  process — handled by the dispatch loop;
* **respawn + deterministic retry** — dead workers are respawned (bounded
  by ``max_respawns``, paced by a seeded
  :class:`~repro.resilience.retry.RetryPolicy` backoff) and their
  in-flight task is re-dispatched (bounded by ``max_task_retries``).
  Tasks are *idempotent by construction* in this codebase: each task is a
  pure function of shared-memory inputs that writes only its own output
  slots, so a re-run — even a double run when a killed worker already
  delivered — produces bit-identical results;
* **graceful serial fallback** — when a budget is exhausted (a poison
  task that kills every host, or more faults than ``max_respawns``), the
  supervisor stops the pool and finishes the remaining tasks *serially in
  the parent* with a parent-side service instance. The run completes,
  ``degraded`` flips to True, and callers surface
  ``stop_reason="parallel-degraded"`` instead of an exception.

Worker-raised exceptions (``_ERR``) are *not* retried: a deterministic
task raises identically on every host, so the remote traceback surfaces
immediately as :class:`~repro.parallel.errors.TaskFailedError`.

Fault drills use the task sentinels :data:`CRASH_TASK` (from the plain
pool), :data:`HANG_TASK` (busy-sleep forever, heartbeat healthy — only
the task deadline can catch it) and :data:`STALL_HEARTBEAT_TASK` (stop
heartbeating, then sleep — only the staleness deadline can catch it).

Every lifecycle decision is emitted as a :class:`WorkerEvent` through the
``on_event`` callback, which the framework writes into the CRC-framed
resilience journal.

Results travel over a **per-worker pipe** (:class:`_ResultChannel`), not
a shared ``mp.Queue``. A shared queue serialises writers through one
cross-process write lock, and a worker SIGKILLed between acquiring that
lock and releasing it (its queue feeder thread dies mid-``put``) leaves
the semaphore held forever — every surviving writer then blocks, which
reads as a spurious pool-wide hang. With one pipe per worker the blast
radius of a kill is the dying worker's own channel, which the supervisor
discards on respawn; a partially written frame simply never parses.
"""

from __future__ import annotations

import collections
import multiprocessing as mp
import os
import pickle
import select
import struct
import threading
import time
import traceback
from dataclasses import dataclass, field

from ..resilience.retry import RetryPolicy
from . import reaper
from .errors import ParallelExecutionError, TaskFailedError
from .pool import _ERR, _INIT_ERR, _OK, _READY, CRASH_TASK

__all__ = ["SupervisionConfig", "WorkerEvent", "SupervisedWorkerPool",
           "TaskPipeline", "HANG_TASK", "STALL_HEARTBEAT_TASK"]

#: Sentinel task making a worker loop forever while its heartbeat stays
#: healthy — detectable only through the per-task deadline.
HANG_TASK = "__repro.parallel.hang__"

#: Sentinel task that silences the worker's heartbeat thread and then
#: sleeps — detectable only through heartbeat staleness.
STALL_HEARTBEAT_TASK = "__repro.parallel.stall-heartbeat__"

_IDLE, _STARTING, _BUSY, _DEAD = "idle", "starting", "busy", "dead"


@dataclass(frozen=True)
class SupervisionConfig:
    """Knobs of the supervision layer (flat scalars — journals as JSON).

    Attributes
    ----------
    heartbeat_seconds:
        Interval at which each worker stamps its heartbeat slot.
    stale_after_seconds:
        Heartbeat silence after which a live process counts as frozen
        and is killed by the watchdog.
    task_deadline_seconds:
        Wall-clock limit for one task (and for worker start-up). A task
        still running past it is treated as hung: the worker is killed
        and the task re-dispatched. Size it to a comfortable multiple of
        the slowest expected task.
    max_respawns:
        Pool-lifetime budget of worker respawns; exhausting it degrades
        the pool to serial execution.
    max_task_retries:
        Re-dispatch budget of a single task. A task that keeps killing
        its host (a poison task) degrades the pool once the budget is
        spent, instead of burning every respawn.
    respawn_delay / respawn_factor / respawn_jitter / seed:
        Parameters of the deterministic respawn backoff (see
        :class:`~repro.resilience.retry.RetryPolicy`).
    poll_seconds:
        Parent result-channel poll and watchdog scan interval.
    """

    heartbeat_seconds: float = 0.2
    stale_after_seconds: float = 10.0
    task_deadline_seconds: float = 120.0
    max_respawns: int = 3
    max_task_retries: int = 2
    respawn_delay: float = 0.05
    respawn_factor: float = 2.0
    respawn_jitter: float = 0.1
    seed: int = 0
    poll_seconds: float = 0.05

    def retry_policy(self) -> RetryPolicy:
        """Backoff schedule pacing the respawns (deterministic jitter)."""
        return RetryPolicy(max_attempts=self.max_respawns + 1,
                           base_delay=self.respawn_delay,
                           factor=self.respawn_factor,
                           max_delay=max(self.respawn_delay * 8, 1.0),
                           jitter=self.respawn_jitter, seed=self.seed)


@dataclass
class WorkerEvent:
    """One supervision decision, shaped for the resilience journal."""

    kind: str           # crash | hang | stale | respawn | retry | degrade
    worker_id: int
    task_index: int | None = None
    attempt: int = 0
    detail: str = ""
    wallclock: float = field(default_factory=time.time)

    def payload(self) -> dict:
        """JSON-serialisable form for journal records."""
        return {"kind": self.kind, "worker_id": self.worker_id,
                "task_index": self.task_index, "attempt": self.attempt,
                "detail": self.detail, "wallclock": self.wallclock}


class _ResultChannel:
    """Crash-tolerant one-way result stream (worker → parent).

    A plain ``os.pipe`` with length-prefixed pickle frames. There is no
    lock anywhere in the path: each channel has exactly one writer (its
    worker), so a SIGKILL mid-write can only truncate that worker's own
    last frame. The parent reads non-blockingly and reassembles frames
    from a buffer, so a truncated frame is silently pending forever and
    dies with the channel — it can never wedge the parent or a sibling.
    """

    def __init__(self):
        self.r, self.w = os.pipe()
        os.set_blocking(self.r, False)
        self._buf = bytearray()

    def __getstate__(self):
        # Only reached under the "spawn" start method (fork inherits the
        # fds directly): ship a duplicate of the write end to the child.
        from multiprocessing import reduction
        return {"w": reduction.DupFd(self.w)}

    def __setstate__(self, state):
        self.w = state["w"].detach()
        self.r = -1
        self._buf = bytearray()

    # -- worker side ---------------------------------------------------
    def bind_worker(self) -> None:
        """Drop the read end in the child; the write end stays blocking."""
        if self.r != -1:
            os.close(self.r)
            self.r = -1

    def send(self, obj) -> None:
        payload = pickle.dumps(obj)
        data = struct.pack("!I", len(payload)) + payload
        while data:
            written = os.write(self.w, data)
            data = data[written:]

    # -- parent side ---------------------------------------------------
    def after_spawn(self) -> None:
        """Drop the parent's write end once the child holds its copy.

        This must run right after ``Process.start()`` so workers forked
        *later* never inherit this channel's write end — the write end
        must live in exactly one process for the crash analysis above to
        hold.
        """
        if self.w != -1:
            os.close(self.w)
            self.w = -1

    def drain(self) -> list:
        """Return every *complete* frame currently in the pipe."""
        try:
            while True:
                chunk = os.read(self.r, 1 << 16)
                if not chunk:        # EOF: writer gone; buffered frames
                    break            # below are still returned
                self._buf += chunk
        except BlockingIOError:
            pass
        frames = []
        while len(self._buf) >= 4:
            size = struct.unpack_from("!I", self._buf)[0]
            if len(self._buf) < 4 + size:
                break                # truncated frame: wait (or never)
            frames.append(pickle.loads(bytes(self._buf[4:4 + size])))
            del self._buf[:4 + size]
        return frames

    def close(self) -> None:
        for fd in (self.r, self.w):
            if fd != -1:
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover
                    pass
        self.r = self.w = -1
        self._buf.clear()


def _supervised_worker_main(worker_id, start_method, service_cls, init_args,
                            task_q, channel, heartbeats, beat_interval):
    """Worker body: heartbeat thread + the plain service loop."""
    stop_beat = threading.Event()

    def beat():
        while not stop_beat.is_set():
            heartbeats[worker_id] = time.monotonic()
            stop_beat.wait(beat_interval)

    threading.Thread(target=beat, daemon=True,
                     name=f"repro-heartbeat-{worker_id}").start()
    channel.bind_worker()
    try:
        from . import shm
        shm._UNTRACK_ON_ATTACH = start_method == "spawn"
        service = service_cls(*init_args)
    except BaseException:  # noqa: BLE001 - report any init failure
        channel.send((_INIT_ERR, worker_id, traceback.format_exc()))
        return
    channel.send((_READY, worker_id, None))
    while True:
        message = task_q.get()
        if message is None:
            return
        index, task = message
        if task == CRASH_TASK:
            os._exit(17)
        if task == HANG_TASK:
            while True:          # heartbeat stays healthy: a true hang
                time.sleep(3600)
        if task == STALL_HEARTBEAT_TASK:
            stop_beat.set()      # go silent: a frozen-process stand-in
            heartbeats[worker_id] = -1e18
            time.sleep(3600)
        try:
            channel.send((_OK, index, service.handle(task)))
        except BaseException:  # noqa: BLE001 - ship traceback to parent
            channel.send((_ERR, index, traceback.format_exc()))


class _Slot:
    """Parent-side state of one worker seat (process may be replaced)."""

    __slots__ = ("worker_id", "proc", "task_q", "channel", "state",
                 "task_index", "deadline_at", "kill_reason")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.proc = None
        self.task_q = None
        self.channel: _ResultChannel | None = None
        self.state = _DEAD
        self.task_index: int | None = None
        self.deadline_at: float = float("inf")
        self.kill_reason: str | None = None


class _Watchdog(threading.Thread):
    """Scans worker liveness; kills hung or frozen workers.

    The watchdog never respawns or re-dispatches — it only converts the
    two invisible failure modes (hang, freeze) into the visible one (a
    dead process), which the dispatch loop then handles. The kill reason
    is recorded on the slot so the event is labelled correctly.
    """

    def __init__(self, pool: "SupervisedWorkerPool"):
        super().__init__(daemon=True, name="repro-supervisor-watchdog")
        self._pool = pool
        # Not ``_stop``: that would shadow ``Thread._stop()``, which
        # CPython's ``threading._after_fork`` calls in forked children —
        # respawned workers would inherit a corrupted threading state.
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        pool = self._pool
        cfg = pool.supervision
        while not self._halt.wait(cfg.poll_seconds):
            now = time.monotonic()
            with pool._lock:
                for slot in pool._slots:
                    proc = slot.proc
                    if (proc is None or slot.state == _DEAD
                            or proc.exitcode is not None):
                        continue
                    beat = pool._heartbeats[slot.worker_id]
                    if now - beat > cfg.stale_after_seconds:
                        slot.kill_reason = (
                            f"heartbeat silent for {now - beat:.2f}s "
                            f"(stale_after={cfg.stale_after_seconds}s)")
                        proc.kill()
                    elif (slot.state in (_BUSY, _STARTING)
                          and now > slot.deadline_at):
                        what = ("task" if slot.state == _BUSY
                                else "start-up")
                        slot.kill_reason = (
                            f"{what} exceeded the "
                            f"{cfg.task_deadline_seconds}s deadline")
                        proc.kill()


class SupervisedWorkerPool:
    """Self-healing drop-in for :class:`~repro.parallel.pool.WorkerPool`.

    Same constructor contract (``processes`` seats, a picklable service
    class, shared-memory state in ``init_args``) plus the supervision
    knobs. ``run_tasks`` keeps the task-index result ordering — and with
    it the bit-determinism contract of the scoring and sharding layers —
    across crashes, hangs, respawns and the serial fallback.
    """

    def __init__(self, processes: int, service_cls, init_args: tuple = (),
                 start_method: str | None = None,
                 supervision: SupervisionConfig | None = None,
                 on_event=None):
        if processes <= 0:
            raise ValueError("processes must be positive")
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        # A fresh pool is the natural moment to reclaim segments a
        # previous SIGKILLed run left behind (see repro.parallel.reaper).
        reaper.sweep_orphans()
        self.supervision = supervision or SupervisionConfig()
        self.on_event = on_event
        self.processes = processes
        self.events: list[WorkerEvent] = []
        self.degraded = False
        self.degrade_reason = ""
        self._start_method = start_method
        self._ctx = mp.get_context(start_method)
        self._service_cls = service_cls
        self._init_args = tuple(init_args)
        self._retry = self.supervision.retry_policy()
        self._respawns_used = 0
        self._closed = False
        self._serial_service = None
        self._lock = threading.Lock()
        self._heartbeats = self._ctx.Array("d", processes, lock=False)
        self._slots = [_Slot(i) for i in range(processes)]
        for slot in self._slots:
            self._spawn(slot)
        self._watchdog = _Watchdog(self)
        self._watchdog.start()
        try:
            self._await_ready()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _emit(self, kind: str, worker_id: int, task_index=None, attempt=0,
              detail: str = "") -> None:
        event = WorkerEvent(kind=kind, worker_id=worker_id,
                            task_index=task_index, attempt=attempt,
                            detail=detail)
        self.events.append(event)
        if self.on_event is not None:
            try:
                self.on_event(event)
            except Exception:  # noqa: BLE001 - observers must not kill runs
                pass

    def _spawn(self, slot: _Slot) -> None:
        """Start (or restart) the process occupying ``slot``."""
        now = time.monotonic()
        with self._lock:
            self._heartbeats[slot.worker_id] = now
            slot.task_q = self._ctx.Queue()
            slot.channel = _ResultChannel()
            slot.proc = self._ctx.Process(
                target=_supervised_worker_main,
                args=(slot.worker_id, self._start_method, self._service_cls,
                      self._init_args, slot.task_q, slot.channel,
                      self._heartbeats, self.supervision.heartbeat_seconds),
                daemon=True,
                name=f"repro-supervised-worker-{slot.worker_id}")
            slot.state = _STARTING
            slot.task_index = None
            slot.kill_reason = None
            slot.deadline_at = now + self.supervision.task_deadline_seconds
            slot.proc.start()
            slot.channel.after_spawn()

    def _collect_messages(self, timeout: float | None = None) -> list:
        """Wait up to ``timeout`` (default ``poll_seconds``), then drain
        every live channel.

        Returns ``(slot, message)`` pairs for each complete frame. An
        empty return is the supervisor's cue to scan for dead processes.
        """
        if timeout is None:
            timeout = self.supervision.poll_seconds
        fds = [s.channel.r for s in self._slots
               if s.state != _DEAD and s.channel is not None
               and s.channel.r != -1]
        if fds:
            select.select(fds, [], [], timeout)
        elif timeout:
            time.sleep(timeout)
        messages = []
        for slot in self._slots:
            if (slot.state == _DEAD or slot.channel is None
                    or slot.channel.r == -1):
                continue
            for message in slot.channel.drain():
                messages.append((slot, message))
        return messages

    def _await_ready(self) -> None:
        """Block until every seat reported READY (initial start-up only).

        Unlike mid-run faults, an initial failure is almost certainly a
        configuration bug (the service cannot construct anywhere), so it
        raises instead of degrading.
        """
        while any(s.state == _STARTING for s in self._slots):
            messages = self._collect_messages()
            if not messages:
                for slot in self._slots:
                    if (slot.state == _STARTING
                            and slot.proc.exitcode is not None):
                        raise ParallelExecutionError(
                            f"worker {slot.worker_id} died during start-up "
                            f"(exit code {slot.proc.exitcode}"
                            + (f"; {slot.kill_reason}" if slot.kill_reason
                               else "") + ")")
                continue
            for slot, (kind, _wid, payload) in messages:
                if kind == _INIT_ERR:
                    raise ParallelExecutionError(
                        f"worker failed to initialise:\n{payload}")
                if kind == _READY:
                    with self._lock:
                        slot.state = _IDLE
                        slot.deadline_at = float("inf")

    # ------------------------------------------------------------------
    # Serial fallback
    # ------------------------------------------------------------------
    def _serial_handle(self, task):
        if self._serial_service is None:
            self._serial_service = self._service_cls(*self._init_args)
        return self._serial_service.handle(task)

    def _degrade(self, reason: str) -> None:
        """Give up on the pool; later work runs serially in the parent."""
        self.degraded = True
        self.degrade_reason = reason
        self._emit("degrade", worker_id=-1, detail=reason)
        self._watchdog.stop()
        with self._lock:
            for slot in self._slots:
                if slot.proc is not None and slot.proc.exitcode is None:
                    slot.proc.kill()
                slot.state = _DEAD
                if slot.channel is not None:
                    slot.channel.close()
                    slot.channel = None

    # ------------------------------------------------------------------
    # Fault accounting
    # ------------------------------------------------------------------
    def _classify_death(self, slot: _Slot) -> str:
        reason = slot.kill_reason or ""
        if "deadline" in reason:
            return "hang"
        if "heartbeat" in reason:
            return "stale"
        return "crash"

    def _handle_death(self, slot: _Slot, pending: collections.deque,
                      attempts: dict, need_more_work: bool) -> str | None:
        """Account a dead worker; respawn or return a degrade reason."""
        kind = self._classify_death(slot)
        exitcode = slot.proc.exitcode
        index = slot.task_index
        detail = (slot.kill_reason
                  or f"process died with exit code {exitcode}")
        with self._lock:
            slot.state = _DEAD
            slot.task_index = None
            slot.deadline_at = float("inf")
            if slot.task_q is not None:
                # The dead worker's queue may still hold its task; a
                # fresh queue per respawn keeps stale dispatches from
                # reaching the replacement. (A double *delivery* of an
                # already-finished task would be harmless — results are
                # slotted by index — but why pay for the re-run.)
                slot.task_q.close()
                slot.task_q.cancel_join_thread()
                slot.task_q = None
            if slot.channel is not None:
                # Discard the result channel with the process: anything
                # it still holds is at best a duplicate of a retried
                # (idempotent) task, at worst a truncated frame.
                slot.channel.close()
                slot.channel = None
        self._emit(kind, slot.worker_id, task_index=index,
                   attempt=attempts.get(index, 0) if index is not None else 0,
                   detail=detail)

        if index is not None:
            attempts[index] = attempts.get(index, 0) + 1
            if attempts[index] > self.supervision.max_task_retries:
                return (f"task {index} failed {attempts[index]} times "
                        f"(max_task_retries="
                        f"{self.supervision.max_task_retries}); "
                        f"last fault: {detail}")
            pending.appendleft(index)
            self._emit("retry", slot.worker_id, task_index=index,
                       attempt=attempts[index],
                       detail=f"re-dispatching after {kind}")
            need_more_work = True

        if not need_more_work and not pending:
            return None              # nothing left for this seat to do
        if self._respawns_used >= self.supervision.max_respawns:
            return (f"respawn budget exhausted "
                    f"(max_respawns={self.supervision.max_respawns}); "
                    f"last fault: worker {slot.worker_id} {kind} ({detail})")
        delay = self._retry.delay(self._respawns_used)
        self._respawns_used += 1
        time.sleep(delay)
        self._spawn(slot)
        self._emit("respawn", slot.worker_id,
                   attempt=self._respawns_used,
                   detail=f"respawned after {kind} (backoff {delay:.3f}s)")
        return None

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def run_tasks(self, tasks: list) -> list:
        """Execute ``tasks``; results in task order, faults self-healed.

        Raises :class:`TaskFailedError` when a task *raises* in a worker
        (deterministic bug — retrying or degrading would fail the same
        way for honest services, and the remote traceback matters more),
        and :class:`ParallelExecutionError` only for unusable-pool states.
        Worker deaths and hangs never raise: they respawn, retry, and
        ultimately degrade to serial execution.
        """
        if self._closed:
            raise ParallelExecutionError("pool is closed")
        results: list = [None] * len(tasks)
        if self.degraded:
            for index, task in enumerate(tasks):
                results[index] = self._serial_handle(task)
            return results

        pending = collections.deque(range(len(tasks)))
        done = [False] * len(tasks)
        remaining = len(tasks)
        attempts: dict[int, int] = {}

        while remaining:
            # Fill every idle seat (deterministic order: seat id).
            with self._lock:
                for slot in self._slots:
                    if slot.state == _IDLE and pending:
                        index = pending.popleft()
                        slot.state = _BUSY
                        slot.task_index = index
                        slot.deadline_at = (
                            time.monotonic()
                            + self.supervision.task_deadline_seconds)
                        slot.task_q.put((index, tasks[index]))

            messages = self._collect_messages()
            if not messages:
                degrade_reason = None
                for slot in self._slots:
                    if (slot.state in (_BUSY, _IDLE, _STARTING)
                            and slot.proc.exitcode is not None):
                        degrade_reason = self._handle_death(
                            slot, pending, attempts,
                            need_more_work=remaining > 0)
                        if degrade_reason:
                            break
                if degrade_reason is None and remaining and not any(
                        s.state != _DEAD for s in self._slots):
                    degrade_reason = "no live workers remain"
                if degrade_reason:
                    self._degrade(degrade_reason)
                    for index in range(len(tasks)):
                        if not done[index]:
                            results[index] = self._serial_handle(tasks[index])
                            done[index] = True
                            remaining -= 1
                continue

            for slot, (kind, index, payload) in messages:
                if self.degraded:
                    break            # a degrade mid-batch finished the run
                if kind == _OK:
                    with self._lock:
                        if slot.task_index == index:
                            slot.state = _IDLE
                            slot.task_index = None
                            slot.deadline_at = float("inf")
                    if not done[index]:   # late duplicates are harmless
                        results[index] = payload
                        done[index] = True
                        remaining -= 1
                elif kind == _ERR:
                    self.close()
                    raise TaskFailedError(
                        f"task {index} raised in worker:\n{payload}")
                elif kind == _READY:
                    with self._lock:
                        if slot.state == _STARTING:
                            slot.state = _IDLE
                            slot.deadline_at = float("inf")
                elif kind == _INIT_ERR:
                    # A respawned worker failed to construct the service;
                    # treat like a death of that seat (budgeted).
                    if slot.proc.exitcode is None:
                        slot.proc.kill()
                        slot.proc.join(timeout=1.0)
                    degrade_reason = self._handle_death(
                        slot, pending, attempts, need_more_work=remaining > 0)
                    if degrade_reason:
                        self._degrade(degrade_reason)
                        for index in range(len(tasks)):
                            if not done[index]:
                                results[index] = self._serial_handle(
                                    tasks[index])
                                done[index] = True
                                remaining -= 1
        return results

    # ------------------------------------------------------------------
    # Standing pipeline
    # ------------------------------------------------------------------
    def start_pipeline(self, tasks: list) -> "TaskPipeline":
        """Dispatch one *standing* task per seat and return the pipeline.

        A standing task is a long-running ``service.handle`` call that
        coordinates with the parent through shared memory (the sharded
        trainer's per-epoch worker loop) instead of returning per step.
        The pipeline keeps the supervision guarantees alive for such
        tasks: the caller ``pump()``\\ s it from its own wait loops (death
        detection, respawn + re-dispatch, budget accounting) and
        ``bump_deadlines()`` whenever it observes progress, which turns
        the per-task deadline into a per-step deadline.

        Unlike :meth:`run_tasks` there is **no serial fallback here**:
        running a standing task synchronously in the parent would
        deadlock on the parent-driven control state it waits for. On an
        exhausted budget the pipeline degrades the pool (events,
        ``degraded`` flag) and the *caller* completes the remaining work
        through its own serial path.
        """
        if self._closed:
            raise ParallelExecutionError("pool is closed")
        if self.degraded:
            raise ParallelExecutionError(
                "cannot start a pipeline on a degraded pool")
        if len(tasks) > self.processes:
            raise ValueError(
                f"a pipeline is one standing task per seat: got "
                f"{len(tasks)} tasks for {self.processes} seats")
        return TaskPipeline(self, tasks)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the watchdog, kill the workers, release queues/channels."""
        if self._closed:
            return
        self._closed = True
        self._watchdog.stop()
        for slot in self._slots:
            if slot.proc is None:
                continue
            if slot.state != _DEAD and slot.proc.exitcode is None:
                try:
                    slot.task_q.put(None)
                except (ValueError, OSError):  # pragma: no cover
                    pass
            slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=1.0)
            if slot.task_q is not None:
                slot.task_q.close()
                slot.task_q.cancel_join_thread()
            if slot.channel is not None:
                slot.channel.close()
                slot.channel = None
        if self._serial_service is not None:
            close = getattr(self._serial_service, "close", None)
            if callable(close):
                close()
            self._serial_service = None

    def __enter__(self) -> "SupervisedWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TaskPipeline:
    """Parent-side handle of a set of standing tasks (one per seat).

    Created by :meth:`SupervisedWorkerPool.start_pipeline`. The caller
    owns the pacing: it calls :meth:`pump` (non-blocking by default)
    from its shared-memory wait loops so deaths are noticed while it
    waits on data, :meth:`bump_deadlines` once per observed step, and
    :meth:`finish` after it has signalled its own stop condition through
    whatever channel the standing tasks watch.

    Fault handling mirrors :meth:`SupervisedWorkerPool.run_tasks`: a
    SIGKILLed/hung/frozen worker is respawned (respawn budget) and its
    standing task re-dispatched (retry budget). Standing tasks must be
    idempotent *mid-flight*: a replacement re-enters the same task and
    re-derives where the computation stands from shared state — which
    the sharded trainer's seqlock protocol guarantees (a recomputed step
    republishes bit-identical bytes). Exhausted budgets degrade the pool
    and leave completion to the caller's serial path.
    """

    def __init__(self, pool: SupervisedWorkerPool, tasks: list):
        self._pool = pool
        self.tasks = list(tasks)
        self.results: list = [None] * len(self.tasks)
        self._done = [False] * len(self.tasks)
        self._remaining = len(self.tasks)
        self._pending = collections.deque(range(len(self.tasks)))
        self._attempts: dict[int, int] = {}
        self._stopping = False
        self._dispatch()

    @property
    def degraded(self) -> bool:
        return self._pool.degraded

    @property
    def finished(self) -> bool:
        return self._remaining == 0

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        pool = self._pool
        with pool._lock:
            for slot in pool._slots:
                if slot.state == _IDLE and self._pending:
                    index = self._pending.popleft()
                    slot.state = _BUSY
                    slot.task_index = index
                    slot.deadline_at = (
                        time.monotonic()
                        + pool.supervision.task_deadline_seconds)
                    slot.task_q.put((index, self.tasks[index]))

    def bump_deadlines(self) -> None:
        """Re-arm the task deadline of every busy seat.

        Called by the driver once per observed step, so the watchdog's
        ``task_deadline_seconds`` bounds one *step* of a standing task
        rather than its whole (epoch-long) lifetime.
        """
        pool = self._pool
        deadline = (time.monotonic()
                    + pool.supervision.task_deadline_seconds)
        with pool._lock:
            for slot in pool._slots:
                if slot.state == _BUSY:
                    slot.deadline_at = deadline

    def _on_death(self, slot: _Slot) -> str | None:
        pool = self._pool
        if not self._stopping:
            return pool._handle_death(slot, self._pending, self._attempts,
                                      need_more_work=self._remaining > 0)
        # During shutdown a standing task's purpose (the steps) is
        # already served; its final summary is advisory. Account the
        # death, but spend no respawn on it.
        kind = pool._classify_death(slot)
        index = slot.task_index
        detail = (slot.kill_reason
                  or f"process died with exit code {slot.proc.exitcode}")
        with pool._lock:
            slot.state = _DEAD
            slot.task_index = None
            slot.deadline_at = float("inf")
            if slot.task_q is not None:
                slot.task_q.close()
                slot.task_q.cancel_join_thread()
                slot.task_q = None
            if slot.channel is not None:
                slot.channel.close()
                slot.channel = None
        pool._emit(kind, slot.worker_id, task_index=index,
                   detail=detail + " (during pipeline stop; not retried)")
        if index is not None and not self._done[index]:
            self._done[index] = True
            self._remaining -= 1
        return None

    def pump(self, wait: float = 0.0) -> None:
        """Process supervisor traffic; never blocks longer than ``wait``.

        Raises :class:`TaskFailedError` if a standing task raised in its
        worker (deterministic bug; the remote traceback matters more
        than recovery). Worker deaths respawn/re-dispatch; exhausted
        budgets degrade the pool — check :attr:`degraded` after pumping.
        """
        pool = self._pool
        if pool.degraded or pool._closed or self._remaining == 0:
            return
        messages = pool._collect_messages(timeout=wait)
        degrade_reason = None
        for slot, (kind, index, payload) in messages:
            if pool.degraded:
                return
            if kind == _OK:
                with pool._lock:
                    if slot.task_index == index:
                        slot.state = _IDLE
                        slot.task_index = None
                        slot.deadline_at = float("inf")
                if not self._done[index]:
                    self.results[index] = payload
                    self._done[index] = True
                    self._remaining -= 1
            elif kind == _ERR:
                pool.close()
                raise TaskFailedError(
                    f"pipeline task {index} raised in worker:\n{payload}")
            elif kind == _READY:
                with pool._lock:
                    if slot.state == _STARTING:
                        slot.state = _IDLE
                        slot.deadline_at = float("inf")
            elif kind == _INIT_ERR:
                if slot.proc.exitcode is None:
                    slot.proc.kill()
                    slot.proc.join(timeout=1.0)
                degrade_reason = self._on_death(slot)
                if degrade_reason:
                    break
        if degrade_reason is None:
            for slot in pool._slots:
                if (slot.state in (_BUSY, _IDLE, _STARTING)
                        and slot.proc is not None
                        and slot.proc.exitcode is not None):
                    degrade_reason = self._on_death(slot)
                    if degrade_reason:
                        break
        if degrade_reason is None and self._remaining and not any(
                s.state != _DEAD for s in pool._slots):
            degrade_reason = "no live workers remain"
        if degrade_reason:
            pool._degrade(degrade_reason)
            return
        self._dispatch()

    def finish(self, timeout: float | None = None) -> list:
        """Drain the final task results after the stop signal.

        The caller must already have signalled its stop condition (the
        sharded trainer flips its control block to STOP), so workers
        return promptly. Deaths during the drain are not retried. With a
        ``timeout`` the drain is abandoned after that many seconds — the
        pool's ``close()`` will kill the stragglers.
        """
        self._stopping = True
        pool = self._pool
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while self._remaining and not pool.degraded and not pool._closed:
            self.pump(wait=pool.supervision.poll_seconds)
            if deadline is not None and time.monotonic() > deadline:
                break
        return list(self.results)
