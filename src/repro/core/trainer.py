"""Training and fine-tuning with the modified cost function (Sec. III-A).

One :class:`Trainer` serves both phases of the paper's framework: the
initial training that polarises the importance-score distribution, and the
fine-tuning after each pruning iteration ("the neural network is fine-tuned
with the modified cost function in Equation 1").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data import DataLoader, Dataset, EmptyDatasetError
from ..nn import Module, accuracy, cross_entropy
from ..optim import SGD, MultiStepLR
from ..resilience.sentinels import (HealthMonitor, NumericalHealthError,
                                    SentinelConfig, SentinelEvent)
from ..tensor import Tensor, inference_mode
from .regularizers import ModifiedLoss

__all__ = ["TrainingConfig", "EpochStats", "TrainingHistory", "Trainer",
           "evaluate_model"]


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyperparameters.

    Defaults follow the paper's recipe (Sec. IV): SGD, lr 0.01, batch 256,
    weight decay 5e-4, momentum 0.9, λ1 = 1e-4, λ2 = 1e-2. Benchmarks
    override epochs/batch size to fit the CPU budget.
    """

    epochs: int = 10
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 5e-4
    batch_size: int = 256
    lambda1: float = 1e-4
    lambda2: float = 1e-2
    orth_mode: str = "kernel"
    lr_milestones: tuple[int, ...] = ()
    lr_gamma: float = 0.1
    seed: int = 0
    #: Logical shard count for data-parallel fine-tuning; 0 keeps the
    #: serial loop. Part of the numerics (see repro.parallel.shard) —
    #: fixed (workers, seed) reproduces the training history bitwise.
    workers: int = 0
    #: Use closed-form regularizer gradients instead of the autograd
    #: penalty graph (implied by workers > 0; kernel orth mode only).
    fused_reg: bool = False
    #: Double-buffer training batches on a background thread.
    prefetch: bool = True
    #: Materialise per-term L1/orth floats for the history. Turning this
    #: off skips two device-scalar syncs per batch in the autograd path.
    track_terms: bool = True
    #: Gradient wire format of the sharded all-reduce (workers > 0):
    #: "fp32" ships raw float32 buckets (bit-exact, the default); "int8"
    #: ships int8 codes under per-bucket power-of-two scales — ~4× less
    #: bucket traffic, deterministic, but lossy through quantization
    #: rounding (see docs/performance.md).
    grad_transport: str = "fp32"
    #: Size target of one gradient bucket in KiB (workers > 0). Smaller
    #: buckets publish earlier (more compute/reduce overlap), larger ones
    #: amortise per-bucket costs better.
    grad_bucket_kb: int = 512

    def __post_init__(self):
        if self.grad_transport not in ("fp32", "int8"):
            raise ValueError(
                f"unknown grad_transport {self.grad_transport!r}; "
                "expected 'fp32' or 'int8'")
        if self.grad_bucket_kb <= 0:
            raise ValueError("grad_bucket_kb must be positive")

    def loss(self) -> ModifiedLoss:
        """The modified cost function this config describes."""
        return ModifiedLoss(lambda1=self.lambda1, lambda2=self.lambda2,
                            orth_mode=self.orth_mode,
                            track_terms=self.track_terms)


@dataclass
class EpochStats:
    """Aggregated metrics of one training epoch."""

    epoch: int
    train_loss: float
    cross_entropy: float
    l1: float
    orth: float
    train_accuracy: float
    test_accuracy: float | None
    lr: float


@dataclass
class TrainingHistory:
    """Sequence of epoch statistics for one training run.

    ``sentinel_events`` records every numerical-health trip (NaN/Inf loss,
    NaN gradient, loss explosion) together with the action taken —
    ``"rewind"`` when the trainer restored the last healthy weights and
    backed off the learning rate, ``"abort"`` when the retry budget ran
    out and :class:`~repro.resilience.NumericalHealthError` was raised.
    """

    epochs: list[EpochStats] = field(default_factory=list)
    sentinel_events: list[SentinelEvent] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float | None:
        for stats in reversed(self.epochs):
            if stats.test_accuracy is not None:
                return stats.test_accuracy
        return None

    @property
    def best_test_accuracy(self) -> float | None:
        values = [s.test_accuracy for s in self.epochs
                  if s.test_accuracy is not None]
        return max(values) if values else None


def evaluate_model(model: Module, dataset: Dataset, batch_size: int = 256,
                   *, engine: str = "eager") -> tuple[float, float]:
    """Return ``(mean CE loss, top-1 accuracy)`` on a dataset (eval mode).

    ``engine="eager"`` runs the define-by-run forward under
    :func:`~repro.tensor.inference_mode` (no backward closures are built).
    ``engine="infer"`` compiles the model with
    :func:`repro.infer.compile_model` on the first batch and evaluates the
    remaining batches through the compiled plan — same numbers, lower
    latency on fixed shapes.
    """
    if engine not in ("eager", "infer"):
        raise ValueError(f"unknown engine {engine!r}; expected 'eager' "
                         "or 'infer'")
    if len(dataset) == 0:
        raise EmptyDatasetError(
            "evaluate_model received an empty dataset — accuracy over zero "
            "samples is undefined")
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    was_training = model.training
    model.eval()
    compiled = None
    total_loss = 0.0
    total_correct = 0.0
    total = 0
    try:
        with inference_mode():
            for images, labels in loader:
                if engine == "infer":
                    if compiled is None:
                        from ..infer import compile_model
                        compiled = compile_model(model, images,
                                                 max_batch=batch_size)
                    logits = Tensor(compiled.run(images))
                else:
                    logits = model(Tensor(images))
                loss = cross_entropy(logits, labels, reduction="sum")
                total_loss += float(loss.data)
                total_correct += accuracy(logits, labels) * len(labels)
                total += len(labels)
    finally:
        model.train(was_training)
    if total == 0:
        raise EmptyDatasetError("empty evaluation dataset")
    return total_loss / total, total_correct / total


class Trainer:
    """SGD training loop over the modified objective.

    Parameters
    ----------
    model:
        Network to optimise (mutated in place).
    train_dataset / test_dataset:
        Data; the test set is evaluated once per epoch when provided.
    config:
        Hyperparameters; ``config.loss()`` supplies the objective so the
        regularisation ablations of Table III are a config change.
    sentinel:
        Optional :class:`~repro.resilience.SentinelConfig` enabling the
        numerical-health watchdog: NaN/Inf losses, NaN gradients and loss
        explosions are caught *before* the optimiser step, the last
        healthy weights are restored, the learning rate backs off, and the
        epoch is retried. When the retry budget is exhausted the trainer
        restores the last healthy weights and raises
        :class:`~repro.resilience.NumericalHealthError` — so the caller
        always gets back the best recoverable model.
    """

    def __init__(self, model: Module, train_dataset: Dataset,
                 test_dataset: Dataset | None = None,
                 config: TrainingConfig | None = None,
                 loss_fn: ModifiedLoss | None = None,
                 post_step: Callable[[], None] | None = None,
                 sentinel: SentinelConfig | None = None,
                 supervision=None, on_worker_event=None):
        self.model = model
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.config = config or TrainingConfig()
        self.sentinel = sentinel
        # Supervision knobs of the sharded-training pool (workers > 0):
        # see repro.parallel.SupervisionConfig / docs/supervision.md.
        self.supervision = supervision
        self.on_worker_event = on_worker_event
        use_fused = self.config.workers > 0 or self.config.fused_reg
        if use_fused and loss_fn is not None:
            raise ValueError(
                "a custom loss_fn cannot be combined with workers > 0 or "
                "fused_reg: the fused/sharded paths compute cross entropy "
                "plus the closed-form Eq. 2 penalties and would silently "
                "ignore the override")
        if use_fused:
            from .regularizers import FusedRegularizer
            self._fused = FusedRegularizer(self.config.lambda1,
                                           self.config.lambda2,
                                           self.config.orth_mode)
        else:
            self._fused = None
        self._session = None
        # Baselines (SSS, TPP, OrthConv) substitute their own regularised
        # objectives here; anything with the ModifiedLoss call signature works.
        self.loss_fn = loss_fn if loss_fn is not None else self.config.loss()
        # Called after every optimizer step; unstructured pruning uses it
        # to re-apply weight masks so masked entries stay zero.
        self.post_step = post_step
        self.optimizer = SGD(model.parameters(), lr=self.config.lr,
                             momentum=self.config.momentum,
                             weight_decay=self.config.weight_decay)
        self.scheduler = (MultiStepLR(self.optimizer,
                                      list(self.config.lr_milestones),
                                      self.config.lr_gamma)
                          if self.config.lr_milestones else None)
        #: Cumulative parent-side wall-clock split of the sharded path
        #: (seconds), surviving session teardown; `repro train-bench`
        #: reports it per step. "step" covers the parent-side fused
        #: regularizer + sentinel + optimizer work, "setup" the session
        #: construction/teardown (pool spawn, shm segments), the rest
        #: comes from ShardedTrainingSession.run_batch.
        self.phase_totals = {"broadcast": 0.0, "compute": 0.0,
                             "publish": 0.0, "reduce": 0.0, "step": 0.0,
                             "setup": 0.0}
        self.steps_run = 0

    def rebind(self) -> None:
        """Re-attach the optimizer to the model's current parameters.

        Must be called after surgery replaced parameter arrays; fresh
        momentum buffers are allocated for resized tensors.
        """
        self.optimizer.rebind(self.model.parameters())
        if self._session is not None:
            # The shared weight/grad buffers were sized for the old
            # parameter shapes; a fresh session is built on the next batch.
            self._session.close()
            self._session = None

    def _run_epoch(self, loader: DataLoader, epoch: int,
                   monitor: HealthMonitor | None):
        """One optimisation epoch.

        Returns ``(sums, batches)`` on success, or the
        :class:`SentinelEvent` that aborted the epoch. Sentinel checks run
        between ``backward`` and the optimiser step, so a poisoned update
        is never applied to the weights.
        """
        if self.config.workers > 0:
            return self._run_epoch_sharded(loader, epoch, monitor)
        if self._fused is not None:
            return self._run_epoch_fused(loader, epoch, monitor)
        sums = {"loss": 0.0, "ce": 0.0, "l1": 0.0, "orth": 0.0, "acc": 0.0}
        batches = 0
        for step, (images, labels) in enumerate(loader):
            self.optimizer.zero_grad()
            logits = self.model(Tensor(images))
            terms = self.loss_fn(self.model, logits, labels)
            if monitor is not None:
                event = monitor.observe_loss(float(terms.total.data),
                                             epoch, step)
                if event is not None:
                    return event
            terms.total.backward()
            if monitor is not None:
                event = monitor.observe_gradients(
                    self.model.named_parameters(), epoch, step)
                if event is not None:
                    return event
            self.optimizer.step()
            if self.post_step is not None:
                self.post_step()
            sums["loss"] += float(terms.total.data)
            sums["ce"] += terms.cross_entropy
            sums["l1"] += terms.l1
            sums["orth"] += terms.orth
            sums["acc"] += accuracy(logits, labels)
            batches += 1
        return sums, batches

    def _observe(self, monitor: HealthMonitor | None, total: float,
                 epoch: int, step: int):
        """Sentinel checks for the fused/sharded paths (grads are ready).

        Runs after the gradients are assembled but before the optimiser
        step, preserving the guarantee that a poisoned update is never
        applied to the weights.
        """
        if monitor is None:
            return None
        event = monitor.observe_loss(total, epoch, step)
        if event is not None:
            return event
        return monitor.observe_gradients(self.model.named_parameters(),
                                         epoch, step)

    def _run_epoch_fused(self, loader: DataLoader, epoch: int,
                         monitor: HealthMonitor | None):
        """Serial epoch with closed-form regularizer gradients.

        Cross entropy backpropagates through the tape; the Eq. 2 penalty
        gradients are then added analytically by
        :class:`~repro.core.regularizers.FusedRegularizer`, skipping the
        per-batch penalty graph over every weight matrix. The penalty
        *values* fall out of the gradient computation for free, so the
        history stays fully populated.
        """
        cfg = self.config
        sums = {"loss": 0.0, "ce": 0.0, "l1": 0.0, "orth": 0.0, "acc": 0.0}
        batches = 0
        for step, (images, labels) in enumerate(loader):
            self.optimizer.zero_grad()
            logits = self.model(Tensor(images))
            ce = cross_entropy(logits, labels)
            ce.backward()
            l1_value, orth_value = self._fused.accumulate(self.model)
            ce_value = float(ce.data)
            total = (ce_value + cfg.lambda1 * l1_value
                     + cfg.lambda2 * orth_value)
            event = self._observe(monitor, total, epoch, step)
            if event is not None:
                return event
            self.optimizer.step()
            if self.post_step is not None:
                self.post_step()
            sums["loss"] += total
            sums["ce"] += ce_value
            sums["l1"] += l1_value
            sums["orth"] += orth_value
            sums["acc"] += accuracy(logits, labels)
            batches += 1
        return sums, batches

    def _ensure_session(self, images: np.ndarray):
        if self._session is not None and not self._session.compatible(
                images.shape):
            self._session.close()
            self._session = None
        if self._session is None:
            from ..parallel.shard import ShardedTrainingSession
            t_setup = time.perf_counter()
            self._session = ShardedTrainingSession(
                self.model, self.config.workers,
                capacity=max(self.config.batch_size, len(images)),
                sample_shape=images.shape[1:],
                supervision=self.supervision,
                on_event=self.on_worker_event,
                bucket_bytes=self.config.grad_bucket_kb * 1024,
                transport=self.config.grad_transport)
            # The parent parameters are now views of the shared weight
            # segment; in-place SGD updates make the optimizer step
            # itself the weight broadcast (bitwise-identical values).
            self.optimizer.in_place = True
            self.phase_totals["setup"] += time.perf_counter() - t_setup
        return self._session

    @property
    def degraded(self) -> bool:
        """Whether the sharded pool fell back to serial execution."""
        return self._session is not None and self._session.degraded

    def _run_epoch_sharded(self, loader: DataLoader, epoch: int,
                           monitor: HealthMonitor | None):
        """Data-parallel epoch over a persistent worker pool.

        Each batch is broadcast through shared memory, its cross-entropy
        gradients computed shard-wise by the pool and all-reduced into the
        parameters (``repro.parallel.shard``); the fused regularizer
        gradients and the SGD step run in the parent. With ``workers=1``
        this is bitwise identical to :meth:`_run_epoch_fused`.
        """
        cfg = self.config
        sums = {"loss": 0.0, "ce": 0.0, "l1": 0.0, "orth": 0.0, "acc": 0.0}
        batches = 0
        for step, (images, labels) in enumerate(loader):
            self.optimizer.zero_grad()
            session = self._ensure_session(images)
            batch = session.run_batch(images, labels)
            t_step = time.perf_counter()
            l1_value, orth_value = self._fused.accumulate(self.model)
            total = (batch["ce"] + cfg.lambda1 * l1_value
                     + cfg.lambda2 * orth_value)
            event = self._observe(monitor, total, epoch, step)
            if event is not None:
                return event
            self.optimizer.step()
            if self.post_step is not None:
                self.post_step()
            self.phase_totals["step"] += time.perf_counter() - t_step
            for phase, seconds in batch["phases"].items():
                self.phase_totals[phase] += seconds
            self.steps_run += 1
            sums["loss"] += total
            sums["ce"] += batch["ce"]
            sums["l1"] += l1_value
            sums["orth"] += orth_value
            sums["acc"] += batch["correct"] / batch["count"]
            batches += 1
        return sums, batches

    def close(self) -> None:
        """Release the sharded-training worker pool, if one was started."""
        if self._session is not None:
            t_setup = time.perf_counter()
            self._session.close()
            self._session = None
            self.phase_totals["setup"] += time.perf_counter() - t_setup

    def _rewind(self, healthy_state, monitor: HealthMonitor) -> None:
        """Restore the last healthy weights and back off the learning rate."""
        self.model.load_state_dict(healthy_state)
        self.optimizer.lr *= self.sentinel.lr_backoff
        if self.scheduler is not None:
            # Schedulers recompute from base_lr; shrink it too or the next
            # scheduler step would undo the backoff.
            self.scheduler.base_lr *= self.sentinel.lr_backoff
        self.optimizer.reset_state()
        monitor.reset()

    def train(self, epochs: int | None = None,
              log: bool = False) -> TrainingHistory:
        """Run the loop for ``epochs`` (default: config.epochs)."""
        epochs = epochs if epochs is not None else self.config.epochs
        history = TrainingHistory()
        if epochs > 0 and len(self.train_dataset) == 0:
            raise EmptyDatasetError(
                "Trainer received an empty training dataset")
        loader = DataLoader(self.train_dataset, batch_size=self.config.batch_size,
                            shuffle=True, seed=self.config.seed,
                            prefetch=self.config.prefetch)
        monitor = (HealthMonitor(self.sentinel)
                   if self.sentinel is not None else None)
        healthy = self.model.state_dict() if monitor is not None else None
        retries = 0
        epoch = 0
        try:
            while epoch < epochs:
                self.model.train()
                outcome = self._run_epoch(loader, epoch, monitor)
                if isinstance(outcome, SentinelEvent):
                    retries += 1
                    if retries > self.sentinel.max_retries:
                        outcome.action = "abort"
                        history.sentinel_events.append(outcome)
                        self.model.load_state_dict(healthy)
                        raise NumericalHealthError(
                            f"retry budget ({self.sentinel.max_retries}) "
                            f"exhausted; last fault: {outcome.describe()} — "
                            "weights restored to the last healthy epoch",
                            events=history.sentinel_events)
                    outcome.action = "rewind"
                    history.sentinel_events.append(outcome)
                    self._rewind(healthy, monitor)
                    if log:
                        print(f"sentinel: {outcome.describe()} "
                              f"(retry {retries}/{self.sentinel.max_retries}, "
                              f"lr -> {self.optimizer.lr:.2e})")
                    continue  # retry the same epoch index
                sums, batches = outcome
                test_acc = None
                if self.test_dataset is not None:
                    _, test_acc = evaluate_model(self.model, self.test_dataset,
                                                 self.config.batch_size)
                stats = EpochStats(
                    epoch=epoch,
                    train_loss=sums["loss"] / batches,
                    cross_entropy=sums["ce"] / batches,
                    l1=sums["l1"] / batches,
                    orth=sums["orth"] / batches,
                    train_accuracy=sums["acc"] / batches,
                    test_accuracy=test_acc,
                    lr=self.optimizer.lr,
                )
                history.epochs.append(stats)
                if self.scheduler is not None:
                    self.scheduler.step()
                if log:
                    acc_str = f" test_acc={test_acc:.3f}" if test_acc is not None else ""
                    print(f"epoch {epoch:3d} loss={stats.train_loss:.4f} "
                          f"ce={stats.cross_entropy:.4f} acc={stats.train_accuracy:.3f}"
                          f"{acc_str}")
                if monitor is not None:
                    healthy = self.model.state_dict()
                epoch += 1
        finally:
            self.close()
        return history
