"""The overall class-aware pruning framework (Sec. III-D, Fig. 5).

Orchestrates the full loop:

1. (optionally) train the network with the modified cost function;
2. evaluate per-class importance scores of all prunable filters;
3. prune with the threshold + percentage strategy;
4. fine-tune to recover accuracy;
5. repeat until either no filter falls below the threshold or the accuracy
   drop cannot be recovered (in which case the last recoverable model is
   restored).
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..data import Dataset
from ..flops import ModelProfile, flops_reduction, profile_model, pruning_ratio
from ..models.pruning_spec import FilterGroup, PrunableModel
from ..nn import Module
from .importance import ImportanceConfig, ImportanceEvaluator, ImportanceReport
from .pruner import (CombinedStrategy, PruningStrategy, apply_pruning,
                     strategy_from_name)
from .trainer import Trainer, TrainingConfig, evaluate_model

__all__ = ["FrameworkConfig", "IterationRecord", "PruningResult",
           "ClassAwarePruningFramework"]


@dataclass(frozen=True)
class FrameworkConfig:
    """Hyperparameters of the iterative framework.

    Attributes
    ----------
    score_threshold:
        Class-count threshold under which a filter is prunable; the paper
        uses 3 for 10-class tasks and 30 for 100-class tasks (i.e. ~30% of
        the class count).
    max_fraction_per_iteration:
        Percentage cap per pruning iteration (paper: 10%).
    strategy:
        ``"percentage+threshold"`` (paper default), ``"threshold"``, or
        ``"percentage"`` — the Table II ablation axis.
    finetune_epochs:
        Retraining epochs after each pruning iteration (paper: up to 130;
        benchmark configs use far fewer).
    accuracy_drop_tolerance:
        Maximum tolerated drop (absolute, in [0,1]) of test accuracy below
        the pre-pruning baseline; exceeding it after fine-tuning terminates
        the loop and restores the last acceptable model.
    max_iterations:
        Safety bound on pruning iterations.
    finetune_lr:
        Learning rate for the per-iteration fine-tuning; ``None`` keeps
        the training config's rate. A pruned network is already near a
        good optimum, so fine-tuning at the full initial rate can *undo*
        training — a fraction of it (e.g. the paper's 0.01) recovers
        instead of destabilising.
    importance:
        Score-evaluation settings (M images per class, τ, aggregation).
    """

    score_threshold: float = 3.0
    max_fraction_per_iteration: float = 0.1
    strategy: str = "percentage+threshold"
    finetune_epochs: int = 2
    accuracy_drop_tolerance: float = 0.02
    max_iterations: int = 20
    finetune_lr: float | None = None
    importance: ImportanceConfig = field(default_factory=ImportanceConfig)


@dataclass
class IterationRecord:
    """Outcome of one prune + fine-tune iteration."""

    iteration: int
    removed_per_group: dict[str, int]
    num_removed: int
    accuracy_after_prune: float
    accuracy_after_finetune: float
    params: int
    flops: int
    report: ImportanceReport


@dataclass
class PruningResult:
    """Everything the framework produced.

    ``model`` is the final pruned network. ``stop_reason`` is one of
    ``"converged"`` (no prunable filter left), ``"accuracy"`` (drop could
    not be recovered; model restored to the last good iteration),
    ``"max_iterations"``.
    """

    model: Module
    baseline_accuracy: float
    final_accuracy: float
    original_profile: ModelProfile
    final_profile: ModelProfile
    iterations: list[IterationRecord] = field(default_factory=list)
    report_before: ImportanceReport | None = None
    report_after: ImportanceReport | None = None
    stop_reason: str = ""

    @property
    def pruning_ratio(self) -> float:
        """Fraction of parameters removed (Table I, column 4)."""
        return pruning_ratio(self.original_profile, self.final_profile)

    @property
    def flops_reduction(self) -> float:
        """Fraction of FLOPs removed (Table I, column 5)."""
        return flops_reduction(self.original_profile, self.final_profile)

    @property
    def accuracy_drop(self) -> float:
        """Baseline minus final accuracy (positive = degradation)."""
        return self.baseline_accuracy - self.final_accuracy

    def summary_row(self, label: str = "") -> str:
        """One Table-I style line: accuracies, ratio, FLOPs reduction."""
        return (f"{label:<24} orig={self.baseline_accuracy * 100:6.2f}% "
                f"pruned={self.final_accuracy * 100:6.2f}% "
                f"ratio={self.pruning_ratio * 100:5.1f}% "
                f"flops_red={self.flops_reduction * 100:5.1f}%")


class ClassAwarePruningFramework:
    """Iterative class-aware pruning of a prunable model (Fig. 5).

    Parameters
    ----------
    model:
        A model exposing ``prunable_groups()`` (every zoo model does).
    train_dataset / test_dataset:
        Training data feeds both importance evaluation and fine-tuning;
        test data defines the accuracy-recovery criterion.
    num_classes:
        Class count of the task (sets the score range).
    input_shape:
        ``(C, H, W)`` — needed to profile params/FLOPs.
    config / training:
        Framework and fine-tuning hyperparameters.
    """

    def __init__(self, model: Module, train_dataset: Dataset,
                 test_dataset: Dataset, num_classes: int,
                 input_shape: tuple[int, int, int],
                 config: FrameworkConfig | None = None,
                 training: TrainingConfig | None = None):
        if not isinstance(model, PrunableModel):
            raise TypeError(
                f"{type(model).__name__} does not expose prunable_groups()")
        self.model = model
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.num_classes = num_classes
        self.input_shape = tuple(input_shape)
        self.config = config or FrameworkConfig()
        self.training = training or TrainingConfig()
        self.strategy: PruningStrategy = strategy_from_name(
            self.config.strategy, self.config.score_threshold,
            self.config.max_fraction_per_iteration)
        self.finetune_training = (
            dataclasses.replace(self.training, lr=self.config.finetune_lr)
            if self.config.finetune_lr is not None else self.training)

    # ------------------------------------------------------------------
    def pretrain(self, epochs: int | None = None, log: bool = False):
        """Phase 1 of Fig. 5: train with the modified cost function."""
        trainer = Trainer(self.model, self.train_dataset, self.test_dataset,
                          self.training)
        return trainer.train(epochs=epochs, log=log)

    def evaluate_importance(self) -> ImportanceReport:
        """Score all prunable groups on the current model."""
        groups = self.model.prunable_groups()
        evaluator = ImportanceEvaluator(self.model, self.train_dataset,
                                        self.num_classes,
                                        self.config.importance)
        return evaluator.evaluate([g.conv for g in groups])

    # ------------------------------------------------------------------
    def run(self, log: bool = False) -> PruningResult:
        """Execute the iterative prune/fine-tune loop on a trained model.

        The model is expected to be trained already (call :meth:`pretrain`
        first when starting from scratch); the loop then only fine-tunes.
        """
        cfg = self.config
        original_profile = profile_model(self.model, self.input_shape)
        _, baseline_acc = evaluate_model(self.model, self.test_dataset,
                                         self.training.batch_size)
        report_before = self.evaluate_importance()

        iterations: list[IterationRecord] = []
        stop_reason = "max_iterations"

        for iteration in range(cfg.max_iterations):
            groups = self.model.prunable_groups()
            report = (report_before if iteration == 0
                      else self.evaluate_importance())
            snapshot = copy.deepcopy(self.model)
            record = apply_pruning(self.model, groups, report, self.strategy)
            if record.num_removed == 0:
                stop_reason = "converged"
                if log:
                    print(f"iter {iteration}: nothing below threshold — stop")
                break

            _, acc_pruned = evaluate_model(self.model, self.test_dataset,
                                           self.training.batch_size)
            trainer = Trainer(self.model, self.train_dataset,
                              self.test_dataset, self.finetune_training)
            trainer.train(epochs=cfg.finetune_epochs)
            _, acc_finetuned = evaluate_model(self.model, self.test_dataset,
                                              self.training.batch_size)
            profile = profile_model(self.model, self.input_shape)
            iterations.append(IterationRecord(
                iteration=iteration,
                removed_per_group={k: len(v) for k, v in record.removed.items()},
                num_removed=record.num_removed,
                accuracy_after_prune=acc_pruned,
                accuracy_after_finetune=acc_finetuned,
                params=profile.total_params,
                flops=profile.total_flops,
                report=report,
            ))
            if log:
                print(f"iter {iteration}: removed {record.num_removed:4d} "
                      f"acc {acc_pruned:.3f} -> {acc_finetuned:.3f} "
                      f"params {profile.total_params}")

            if baseline_acc - acc_finetuned > cfg.accuracy_drop_tolerance:
                # Accuracy could not be recovered: restore the snapshot
                # taken before this iteration and terminate (Fig. 5).
                self.model = snapshot
                stop_reason = "accuracy"
                if log:
                    print(f"iter {iteration}: drop "
                          f"{baseline_acc - acc_finetuned:.3f} exceeds "
                          f"tolerance — restored previous model")
                break

        final_profile = profile_model(self.model, self.input_shape)
        _, final_acc = evaluate_model(self.model, self.test_dataset,
                                      self.training.batch_size)
        report_after = self.evaluate_importance()
        return PruningResult(
            model=self.model,
            baseline_accuracy=baseline_acc,
            final_accuracy=final_acc,
            original_profile=original_profile,
            final_profile=final_profile,
            iterations=iterations,
            report_before=report_before,
            report_after=report_after,
            stop_reason=stop_reason,
        )
