"""The overall class-aware pruning framework (Sec. III-D, Fig. 5).

Orchestrates the full loop:

1. (optionally) train the network with the modified cost function;
2. evaluate per-class importance scores of all prunable filters;
3. prune with the threshold + percentage strategy;
4. fine-tune to recover accuracy;
5. repeat until either no filter falls below the threshold or the accuracy
   drop cannot be recovered (in which case the last recoverable model is
   restored).

The loop is **journaled and crash-resumable** when given a run directory:
every completed iteration commits a checksummed checkpoint plus a journal
record (see :mod:`repro.resilience.journal`), and
``run(resume_from=<run_dir>)`` reconstructs the exact mid-loop state —
seeded, an interrupted-and-resumed run produces a *bit-identical*
:class:`PruningResult` to the same run executed uninterrupted. Corrupt or
truncated checkpoints are detected and resume falls back to the previous
recovery point instead of dying.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data import Dataset
from ..flops import ModelProfile, flops_reduction, profile_model, pruning_ratio
from ..io import CheckpointCorruptError, load_model, save_model
from ..models.pruning_spec import FilterGroup, PrunableModel
from ..nn import Module
from ..parallel.supervisor import SupervisionConfig
from ..resilience.journal import RunDirectory, decode_payload
from ..resilience.retry import RetryingDataset
from ..resilience.sentinels import NumericalHealthError, SentinelConfig
from .importance import ImportanceConfig, ImportanceEvaluator, ImportanceReport
from .pruner import (CombinedStrategy, PruningStrategy, apply_pruning,
                     strategy_from_name)
from .trainer import Trainer, TrainingConfig, evaluate_model

__all__ = ["FrameworkConfig", "IterationRecord", "PruningResult",
           "ClassAwarePruningFramework", "ResumeError", "STOP_REASONS"]


#: Every way the Fig. 5 loop can terminate, with its human explanation.
STOP_REASONS = {
    "converged": "no filter scored below the threshold",
    "accuracy": "accuracy drop could not be recovered; last good model "
                "restored",
    "max_iterations": "iteration budget exhausted",
    "sentinel-abort": "numerical-health sentinel exhausted its retry "
                      "budget during fine-tuning",
    "parallel-degraded": "worker pool exhausted its respawn/retry budget; "
                         "the run completed serially (results are "
                         "bit-identical, wall-clock is not)",
}


class ResumeError(RuntimeError):
    """A run directory cannot be resumed (no journal, no usable state)."""


@dataclass(frozen=True)
class FrameworkConfig:
    """Hyperparameters of the iterative framework.

    Attributes
    ----------
    score_threshold:
        Class-count threshold under which a filter is prunable; the paper
        uses 3 for 10-class tasks and 30 for 100-class tasks (i.e. ~30% of
        the class count).
    max_fraction_per_iteration:
        Percentage cap per pruning iteration (paper: 10%).
    strategy:
        ``"percentage+threshold"`` (paper default), ``"threshold"``, or
        ``"percentage"`` — the Table II ablation axis.
    finetune_epochs:
        Retraining epochs after each pruning iteration (paper: up to 130;
        benchmark configs use far fewer).
    accuracy_drop_tolerance:
        Maximum tolerated drop (absolute, in [0,1]) of test accuracy below
        the pre-pruning baseline; exceeding it after fine-tuning terminates
        the loop and restores the last acceptable model.
    max_iterations:
        Safety bound on pruning iterations.
    finetune_lr:
        Learning rate for the per-iteration fine-tuning; ``None`` keeps
        the training config's rate. A pruned network is already near a
        good optimum, so fine-tuning at the full initial rate can *undo*
        training — a fraction of it (e.g. the paper's 0.01) recovers
        instead of destabilising.
    importance:
        Score-evaluation settings (M images per class, τ, aggregation).
    sentinel:
        Optional numerical-health policy threaded into every fine-tuning
        :class:`Trainer`. When the watchdog's retry budget is exhausted
        the loop terminates with ``stop_reason="sentinel-abort"``, keeping
        the best recoverable model (the paper's termination rule).
    loader_retries:
        When positive, both datasets are wrapped in a
        :class:`~repro.resilience.RetryingDataset` so transient read
        faults are retried this many times before surfacing.
    supervision:
        Optional :class:`~repro.parallel.SupervisionConfig` for the worker
        pools of parallel runs (``workers > 0``): heartbeat/deadline
        detection of crashed and hung workers, bounded respawn with
        deterministic backoff, and graceful serial fallback. A run whose
        pool degraded completes with ``stop_reason="parallel-degraded"``
        instead of aborting; every supervision decision is journaled.
        ``None`` applies the defaults (supervision is always on).
    """

    score_threshold: float = 3.0
    max_fraction_per_iteration: float = 0.1
    strategy: str = "percentage+threshold"
    finetune_epochs: int = 2
    accuracy_drop_tolerance: float = 0.02
    max_iterations: int = 20
    finetune_lr: float | None = None
    importance: ImportanceConfig = field(default_factory=ImportanceConfig)
    sentinel: SentinelConfig | None = None
    loader_retries: int = 0
    supervision: SupervisionConfig | None = None


@dataclass
class IterationRecord:
    """Outcome of one prune + fine-tune iteration."""

    iteration: int
    removed_per_group: dict[str, int]
    num_removed: int
    accuracy_after_prune: float
    accuracy_after_finetune: float
    params: int
    flops: int
    report: ImportanceReport


@dataclass
class PruningResult:
    """Everything the framework produced.

    ``model`` is the final pruned network. ``stop_reason`` is one of the
    :data:`STOP_REASONS` keys: ``"converged"`` (no prunable filter left),
    ``"accuracy"`` (drop could not be recovered; model restored to the
    last good iteration), ``"max_iterations"``, or ``"sentinel-abort"``
    (numerical-health watchdog gave up during fine-tuning).
    ``termination`` is the full sentence explaining *why and where* the
    loop stopped (iteration index, measured drop, sentinel fault, …).
    """

    model: Module
    baseline_accuracy: float
    final_accuracy: float
    original_profile: ModelProfile
    final_profile: ModelProfile
    iterations: list[IterationRecord] = field(default_factory=list)
    report_before: ImportanceReport | None = None
    report_after: ImportanceReport | None = None
    stop_reason: str = ""
    termination: str = ""

    @property
    def pruning_ratio(self) -> float:
        """Fraction of parameters removed (Table I, column 4)."""
        return pruning_ratio(self.original_profile, self.final_profile)

    @property
    def flops_reduction(self) -> float:
        """Fraction of FLOPs removed (Table I, column 5)."""
        return flops_reduction(self.original_profile, self.final_profile)

    @property
    def accuracy_drop(self) -> float:
        """Baseline minus final accuracy (positive = degradation)."""
        return self.baseline_accuracy - self.final_accuracy

    def summary_row(self, label: str = "") -> str:
        """One Table-I style line: accuracies, ratio, FLOPs, stop reason."""
        return (f"{label:<24} orig={self.baseline_accuracy * 100:6.2f}% "
                f"pruned={self.final_accuracy * 100:6.2f}% "
                f"ratio={self.pruning_ratio * 100:5.1f}% "
                f"flops_red={self.flops_reduction * 100:5.1f}% "
                f"stop={self.stop_reason or '?'}")


def _encode_report(report: ImportanceReport) -> dict:
    return {"num_classes": report.num_classes,
            "total": dict(report.total),
            "per_class": dict(report.per_class)}


def _decode_report(payload: dict) -> ImportanceReport:
    return ImportanceReport(total=dict(payload["total"]),
                            per_class=dict(payload["per_class"]),
                            num_classes=int(payload["num_classes"]))


def _decode_iteration(payload: dict) -> IterationRecord:
    return IterationRecord(
        iteration=int(payload["iteration"]),
        removed_per_group={k: int(v)
                           for k, v in payload["removed_per_group"].items()},
        num_removed=int(payload["num_removed"]),
        accuracy_after_prune=float(payload["accuracy_after_prune"]),
        accuracy_after_finetune=float(payload["accuracy_after_finetune"]),
        params=int(payload["params"]),
        flops=int(payload["flops"]),
        report=_decode_report(payload["report"]),
    )


class ClassAwarePruningFramework:
    """Iterative class-aware pruning of a prunable model (Fig. 5).

    Parameters
    ----------
    model:
        A model exposing ``prunable_groups()`` (every zoo model does).
    train_dataset / test_dataset:
        Training data feeds both importance evaluation and fine-tuning;
        test data defines the accuracy-recovery criterion.
    num_classes:
        Class count of the task (sets the score range).
    input_shape:
        ``(C, H, W)`` — needed to profile params/FLOPs.
    config / training:
        Framework and fine-tuning hyperparameters.
    """

    def __init__(self, model: Module, train_dataset: Dataset,
                 test_dataset: Dataset, num_classes: int,
                 input_shape: tuple[int, int, int],
                 config: FrameworkConfig | None = None,
                 training: TrainingConfig | None = None):
        if not isinstance(model, PrunableModel):
            raise TypeError(
                f"{type(model).__name__} does not expose prunable_groups()")
        self.model = model
        self.config = config or FrameworkConfig()
        if self.config.loader_retries > 0:
            train_dataset = RetryingDataset(train_dataset,
                                            self.config.loader_retries)
            test_dataset = RetryingDataset(test_dataset,
                                           self.config.loader_retries)
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.num_classes = num_classes
        self.input_shape = tuple(input_shape)
        self.training = training or TrainingConfig()
        self.strategy: PruningStrategy = strategy_from_name(
            self.config.strategy, self.config.score_threshold,
            self.config.max_fraction_per_iteration)
        self.finetune_training = (
            dataclasses.replace(self.training, lr=self.config.finetune_lr)
            if self.config.finetune_lr is not None else self.training)
        #: Supervision decisions (WorkerEvent) observed across the run.
        self.worker_events: list = []
        self._degraded = False
        self._degrade_detail = ""
        self._rundir: RunDirectory | None = None

    # ------------------------------------------------------------------
    # Worker supervision
    # ------------------------------------------------------------------
    def _on_worker_event(self, event) -> None:
        """Collect and journal one supervision decision of a worker pool.

        Called by :class:`~repro.parallel.SupervisedWorkerPool` from the
        dispatching thread whenever it crashes-detects, respawns, retries
        or degrades. Faults become ``worker_fault`` journal records; a
        degrade additionally flips the run's stop reason to
        ``"parallel-degraded"`` (see :meth:`_finalize`).
        """
        self.worker_events.append(event)
        if event.kind == "degrade":
            self._degraded = True
            self._degrade_detail = event.detail
        if self._rundir is not None:
            kind = ("parallel_degrade" if event.kind == "degrade"
                    else "worker_fault")
            self._rundir.journal.append(kind, **event.payload())

    @property
    def degraded(self) -> bool:
        """Whether any worker pool of this run fell back to serial."""
        return self._degraded

    # ------------------------------------------------------------------
    def pretrain(self, epochs: int | None = None, log: bool = False):
        """Phase 1 of Fig. 5: train with the modified cost function."""
        trainer = Trainer(self.model, self.train_dataset, self.test_dataset,
                          self.training, sentinel=self.config.sentinel,
                          supervision=self.config.supervision,
                          on_worker_event=self._on_worker_event)
        return trainer.train(epochs=epochs, log=log)

    def evaluate_importance(self, workers: int | None = None) -> ImportanceReport:
        """Score all prunable groups on the current model.

        ``workers`` defaults to the training config's shard count, so a
        ``run(workers=N)`` fans the per-class Taylor evaluations across
        the same pool size it fine-tunes with. Results are bit-identical
        to the serial evaluator for any worker count.
        """
        groups = self.model.prunable_groups()
        if workers is None:
            workers = self.training.workers
        evaluator = ImportanceEvaluator(self.model, self.train_dataset,
                                        self.num_classes,
                                        self.config.importance,
                                        workers=workers,
                                        supervision=self.config.supervision,
                                        on_worker_event=self._on_worker_event)
        try:
            return evaluator.evaluate([g.conv for g in groups])
        finally:
            evaluator.close()

    # ------------------------------------------------------------------
    # Journaling helpers
    # ------------------------------------------------------------------
    def _require_arch(self) -> dict:
        arch = getattr(self.model, "arch", None)
        if arch is None or "name" not in arch:
            raise ValueError(
                "journaled runs need an architecture recipe to checkpoint "
                "the model: build it via repro.models.build_model or set "
                "model.arch = {'name': ..., **kwargs}")
        return arch

    def _commit_checkpoint(self, rundir: RunDirectory, tag: str) -> None:
        save_model(self.model, rundir.checkpoint_path(tag),
                   arch=self._require_arch())

    # ------------------------------------------------------------------
    def run(self, log: bool = False, run_dir: str | Path | None = None,
            resume_from: str | Path | None = None,
            post_iteration=None, meta: dict | None = None,
            workers: int | None = None) -> PruningResult:
        """Execute the iterative prune/fine-tune loop on a trained model.

        The model is expected to be trained already (call :meth:`pretrain`
        first when starting from scratch); the loop then only fine-tunes.

        Parameters
        ----------
        run_dir:
            When given, every completed iteration commits a checksummed
            checkpoint plus a journal record under this directory, making
            the run resumable after a crash.
        resume_from:
            Path to the run directory of an interrupted journaled run.
            The loop reconstructs the last committed state (falling back
            past corrupt checkpoints) and continues; seeded, the final
            result is bit-identical to an uninterrupted run. A directory
            whose journal already holds ``run_end`` is reconstructed
            without re-running anything.
        post_iteration:
            Optional callback ``(iteration:int) -> None`` invoked after an
            iteration is committed and accepted; the fault-injection tests
            use it to simulate crashes at exact loop positions.
        meta:
            Caller-defined JSON-serialisable dict stored verbatim in the
            ``run_start`` journal record (the CLI stores its dataset recipe
            there so ``repro run --resume`` is self-contained).
        workers:
            When given, overrides the shard count of both the fine-tuning
            and importance-evaluation phases for this run (equivalent to
            setting ``TrainingConfig.workers``). Applied *before* the
            ``run_start`` record is journaled, so a resumed run replays
            with the same worker count and stays bit-identical.
        """
        if workers is not None:
            self.training = dataclasses.replace(self.training,
                                                workers=workers)
            self.finetune_training = dataclasses.replace(
                self.finetune_training, workers=workers)
        if resume_from is not None:
            return self._resume(Path(resume_from), log=log,
                                post_iteration=post_iteration)

        rundir = RunDirectory(run_dir) if run_dir is not None else None
        # Degradation is scoped to this run: pools are rebuilt per phase,
        # so an earlier degraded run does not taint a fresh one.
        self._degraded = False
        self._degrade_detail = ""
        self._rundir = rundir
        cfg = self.config
        original_profile = profile_model(self.model, self.input_shape)
        _, baseline_acc = evaluate_model(self.model, self.test_dataset,
                                         self.training.batch_size)
        report_before = self.evaluate_importance()
        if rundir is not None:
            self._commit_checkpoint(rundir, "baseline")
            rundir.journal.append(
                "run_start",
                baseline_accuracy=baseline_acc,
                arch=self._require_arch(),
                num_classes=self.num_classes,
                input_shape=list(self.input_shape),
                config=dataclasses.asdict(cfg),
                training=dataclasses.asdict(self.training),
                meta=meta or {},
                report_before=_encode_report(report_before))
        return self._loop(0, [], baseline_acc, original_profile,
                          report_before, rundir, log, post_iteration)

    # ------------------------------------------------------------------
    def _loop(self, start_iteration: int, iterations: list[IterationRecord],
              baseline_acc: float, original_profile: ModelProfile,
              report_before: ImportanceReport, rundir: RunDirectory | None,
              log: bool, post_iteration) -> PruningResult:
        cfg = self.config
        stop_reason = "max_iterations"
        termination = (f"stopped after reaching "
                       f"max_iterations={cfg.max_iterations}")

        for iteration in range(start_iteration, cfg.max_iterations):
            groups = self.model.prunable_groups()
            report = (report_before if iteration == 0
                      else self.evaluate_importance())
            snapshot = copy.deepcopy(self.model)
            record = apply_pruning(self.model, groups, report, self.strategy)
            if record.num_removed == 0:
                stop_reason = "converged"
                termination = (f"converged at iteration {iteration}: no "
                               f"filter scored below the threshold")
                if log:
                    print(f"iter {iteration}: nothing below threshold — stop")
                break

            _, acc_pruned = evaluate_model(self.model, self.test_dataset,
                                           self.training.batch_size)
            trainer = Trainer(self.model, self.train_dataset,
                              self.test_dataset, self.finetune_training,
                              sentinel=cfg.sentinel,
                              supervision=cfg.supervision,
                              on_worker_event=self._on_worker_event)
            try:
                trainer.train(epochs=cfg.finetune_epochs)
            except NumericalHealthError as exc:
                # The trainer already restored the last healthy weights;
                # keep them if they are within tolerance, otherwise fall
                # back to the pre-iteration snapshot (last recoverable).
                _, acc_now = evaluate_model(self.model, self.test_dataset,
                                            self.training.batch_size)
                if baseline_acc - acc_now > cfg.accuracy_drop_tolerance:
                    self.model = snapshot
                stop_reason = "sentinel-abort"
                termination = (f"numerical-health sentinel aborted "
                               f"fine-tuning at iteration {iteration}: {exc}")
                if rundir is not None:
                    rundir.journal.append("sentinel_abort",
                                          iteration=iteration,
                                          detail=str(exc))
                if log:
                    print(f"iter {iteration}: {termination}")
                break

            _, acc_finetuned = evaluate_model(self.model, self.test_dataset,
                                              self.training.batch_size)
            profile = profile_model(self.model, self.input_shape)
            iter_record = IterationRecord(
                iteration=iteration,
                removed_per_group={k: len(v) for k, v in record.removed.items()},
                num_removed=record.num_removed,
                accuracy_after_prune=acc_pruned,
                accuracy_after_finetune=acc_finetuned,
                params=profile.total_params,
                flops=profile.total_flops,
                report=report,
            )
            iterations.append(iter_record)
            if rundir is not None:
                # The checkpoint goes first, the journal record second: the
                # record is the commit point, so a crash in between leaves
                # an orphan checkpoint that is simply rewritten on resume.
                tag = RunDirectory.iteration_tag(iteration)
                self._commit_checkpoint(rundir, tag)
                rundir.journal.append(
                    "iteration",
                    checkpoint=tag,
                    iteration=iteration,
                    removed_per_group=iter_record.removed_per_group,
                    num_removed=iter_record.num_removed,
                    accuracy_after_prune=acc_pruned,
                    accuracy_after_finetune=acc_finetuned,
                    params=iter_record.params,
                    flops=iter_record.flops,
                    report=_encode_report(report))
            if log:
                print(f"iter {iteration}: removed {record.num_removed:4d} "
                      f"acc {acc_pruned:.3f} -> {acc_finetuned:.3f} "
                      f"params {profile.total_params}")

            if baseline_acc - acc_finetuned > cfg.accuracy_drop_tolerance:
                # Accuracy could not be recovered: restore the snapshot
                # taken before this iteration and terminate (Fig. 5).
                self.model = snapshot
                stop_reason = "accuracy"
                termination = (
                    f"accuracy drop {baseline_acc - acc_finetuned:.4f} "
                    f"exceeded tolerance {cfg.accuracy_drop_tolerance:.4f} "
                    f"at iteration {iteration}; restored the model from "
                    f"before that iteration")
                if rundir is not None:
                    rundir.journal.append("rollback", iteration=iteration)
                if log:
                    print(f"iter {iteration}: drop "
                          f"{baseline_acc - acc_finetuned:.3f} exceeds "
                          f"tolerance — restored previous model")
                break

            if post_iteration is not None:
                post_iteration(iteration)

        return self._finalize(iterations, baseline_acc, original_profile,
                              report_before, stop_reason, termination, rundir)

    # ------------------------------------------------------------------
    def _finalize(self, iterations, baseline_acc, original_profile,
                  report_before, stop_reason, termination,
                  rundir: RunDirectory | None) -> PruningResult:
        final_profile = profile_model(self.model, self.input_shape)
        _, final_acc = evaluate_model(self.model, self.test_dataset,
                                      self.training.batch_size)
        report_after = self.evaluate_importance()
        if self._degraded:
            # The pool fell back to serial execution at some point: the
            # results are still bit-identical (idempotent tasks, ordered
            # reduction), but the run should say its parallel layer gave
            # up — "parallel-degraded" outranks the loop's own verdict.
            termination = (f"{termination}; worker pool degraded to serial "
                           f"execution ({self._degrade_detail})")
            stop_reason = "parallel-degraded"
        if rundir is not None:
            self._commit_checkpoint(rundir, "final")
            rundir.journal.append(
                "run_end",
                stop_reason=stop_reason,
                termination=termination,
                final_accuracy=final_acc,
                report_after=_encode_report(report_after))
        return PruningResult(
            model=self.model,
            baseline_accuracy=baseline_acc,
            final_accuracy=final_acc,
            original_profile=original_profile,
            final_profile=final_profile,
            iterations=iterations,
            report_before=report_before,
            report_after=report_after,
            stop_reason=stop_reason,
            termination=termination,
        )

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _resume(self, run_dir: Path, log: bool,
                post_iteration) -> PruningResult:
        rundir = RunDirectory(run_dir, create=False)
        journal = rundir.journal
        start_record = journal.last_event("run_start")
        if start_record is None:
            raise ResumeError(
                f"{run_dir} has no usable run_start journal record "
                f"(journal truncated at record {len(journal.records)})")

        payload = decode_payload(start_record)
        baseline_acc = float(payload["baseline_accuracy"])
        report_before = _decode_report(payload["report_before"])
        self._rundir = rundir

        # A degraded run resumes as degraded: the journal is the only
        # witness of the original pool's collapse, and the resumed result
        # must replay the same stop_reason to stay bit-identical.
        degrade_record = journal.last_event("parallel_degrade")
        if degrade_record is not None:
            self._degraded = True
            self._degrade_detail = str(degrade_record.get("detail", ""))

        # The baseline checkpoint is the root recovery point: without it
        # neither the original profile nor a full rollback is possible.
        try:
            baseline_model = load_model(rundir.checkpoint_path("baseline"),
                                        input_shape=self.input_shape)
        except (CheckpointCorruptError, FileNotFoundError) as exc:
            raise ResumeError(
                f"{run_dir}: baseline checkpoint unusable ({exc}); the run "
                "cannot be resumed — restart from the pretrained model") from exc
        original_profile = profile_model(baseline_model, self.input_shape)

        # Reconstruct committed iterations, dropping any whose checkpoint
        # no longer verifies (crash-corrupted tail): resume falls back to
        # the previous recovery point and recomputes from there.
        iter_payloads = [decode_payload(r) for r in journal.events("iteration")]
        dropped = 0
        model: Module | None = None
        while iter_payloads:
            tag = iter_payloads[-1]["checkpoint"]
            try:
                model = load_model(rundir.checkpoint_path(tag),
                                   input_shape=self.input_shape)
                break
            except (CheckpointCorruptError, FileNotFoundError) as exc:
                if log:
                    print(f"resume: dropping {tag} ({exc})")
                iter_payloads.pop()
                dropped += 1
        iterations = [_decode_iteration(p) for p in iter_payloads]
        if model is None:
            model = baseline_model
        self.model = model
        journal.append("resume",
                       completed_iterations=len(iterations),
                       dropped_checkpoints=dropped)
        if log:
            print(f"resume: {len(iterations)} committed iterations"
                  + (f", {dropped} corrupt checkpoint(s) dropped" if dropped
                     else ""))

        end_record = journal.last_event("run_end")
        if end_record is not None and dropped == 0:
            # The run already finished — reconstruct the result verbatim.
            end = decode_payload(end_record)
            try:
                self.model = load_model(rundir.checkpoint_path("final"),
                                        input_shape=self.input_shape)
            except (CheckpointCorruptError, FileNotFoundError):
                # Final checkpoint damaged: recompute the epilogue from the
                # last good iterate instead of failing the whole resume.
                return self._finalize(iterations, baseline_acc,
                                      original_profile, report_before,
                                      end["stop_reason"], end["termination"],
                                      rundir)
            return PruningResult(
                model=self.model,
                baseline_accuracy=baseline_acc,
                final_accuracy=float(end["final_accuracy"]),
                original_profile=original_profile,
                final_profile=profile_model(self.model, self.input_shape),
                iterations=iterations,
                report_before=report_before,
                report_after=_decode_report(end["report_after"]),
                stop_reason=end["stop_reason"],
                termination=end["termination"],
            )

        cfg = self.config

        def _restore_previous(bad_iteration: int) -> None:
            """Load the recovery point preceding ``bad_iteration``."""
            if bad_iteration > 0:
                tag = RunDirectory.iteration_tag(bad_iteration - 1)
                self.model = load_model(rundir.checkpoint_path(tag),
                                        input_shape=self.input_shape)
            else:
                self.model = load_model(rundir.checkpoint_path("baseline"),
                                        input_shape=self.input_shape)

        # A rollback/abort that was journaled but whose run_end was lost:
        # redo only the epilogue, not the loop.
        rollback = journal.last_event("rollback")
        if rollback is not None and dropped == 0:
            bad = int(rollback["iteration"])
            _restore_previous(bad)
            bad_acc = next(
                (float(r["accuracy_after_finetune"]) for r in iter_payloads
                 if int(r["iteration"]) == bad), baseline_acc)
            last_drop = baseline_acc - bad_acc
            termination = (
                f"accuracy drop {last_drop:.4f} "
                f"exceeded tolerance {cfg.accuracy_drop_tolerance:.4f} "
                f"at iteration {bad}; restored the model from "
                f"before that iteration")
            return self._finalize(iterations, baseline_acc, original_profile,
                                  report_before, "accuracy", termination,
                                  rundir)

        # The uninterrupted loop applies the tolerance check *after*
        # committing the iteration record; a crash in that window means the
        # last committed iteration may still need its verdict.
        if iterations:
            last = iterations[-1]
            drop = baseline_acc - last.accuracy_after_finetune
            if drop > cfg.accuracy_drop_tolerance:
                _restore_previous(last.iteration)
                journal.append("rollback", iteration=last.iteration)
                termination = (
                    f"accuracy drop {drop:.4f} exceeded tolerance "
                    f"{cfg.accuracy_drop_tolerance:.4f} at iteration "
                    f"{last.iteration}; restored the model from before "
                    f"that iteration")
                return self._finalize(iterations, baseline_acc,
                                      original_profile, report_before,
                                      "accuracy", termination, rundir)

        start = iterations[-1].iteration + 1 if iterations else 0
        return self._loop(start, iterations, baseline_acc, original_profile,
                          report_before, rundir, log, post_iteration)
