"""The paper's contribution: class-aware filter pruning.

Public pipeline:

* :class:`ModifiedLoss` — the Eq. 1 training objective;
* :class:`ImportanceEvaluator` — per-class filter importance (Eq. 3–7);
* :class:`CombinedStrategy` & friends — pruning selection (Sec. III-C);
* :func:`prune_groups` — physical filter surgery;
* :class:`ClassAwarePruningFramework` — the Fig. 5 loop tying it together.
"""

from .framework import (ClassAwarePruningFramework, FrameworkConfig,
                        IterationRecord, PruningResult)
from .hooks import ActivationRecorder, activation_mask
from .distill import DistillationLoss, distill_finetune, kl_divergence
from .masking import (FilterMasks, group_mask_paths, masked_accuracy,
                      simulate_decision)
from .specialize import (SpecializationConfig, SpecializationResult,
                         class_subset, specialize)
from .importance import (ImportanceConfig, ImportanceEvaluator,
                         ImportanceReport, aggregate_scores)
from .pruner import (CombinedStrategy, PercentageStrategy, PruningDecision,
                     PruningStrategy, ThresholdStrategy, apply_pruning,
                     strategy_from_name)
from .regularizers import (LossTerms, ModifiedLoss, l1_regularizer,
                           orthogonality_term)
from .surgery import SurgeryRecord, group_sizes, prune_groups
from .taylor import ExactZeroingEngine, TaylorScoreEngine
from .toeplitz import toeplitz_indices, toeplitz_matrix, toeplitz_matrix_tensor
from .trainer import (EpochStats, Trainer, TrainingConfig, TrainingHistory,
                      evaluate_model)

__all__ = [
    "ModifiedLoss", "LossTerms", "l1_regularizer", "orthogonality_term",
    "toeplitz_indices", "toeplitz_matrix", "toeplitz_matrix_tensor",
    "ActivationRecorder", "activation_mask",
    "TaylorScoreEngine", "ExactZeroingEngine",
    "ImportanceConfig", "ImportanceEvaluator", "ImportanceReport",
    "aggregate_scores",
    "PruningStrategy", "ThresholdStrategy", "PercentageStrategy",
    "CombinedStrategy", "PruningDecision", "apply_pruning",
    "strategy_from_name",
    "SurgeryRecord", "prune_groups", "group_sizes",
    "Trainer", "TrainingConfig", "TrainingHistory", "EpochStats",
    "evaluate_model",
    "ClassAwarePruningFramework", "FrameworkConfig", "IterationRecord",
    "PruningResult",
    "FilterMasks", "group_mask_paths", "masked_accuracy", "simulate_decision",
    "SpecializationConfig", "SpecializationResult", "specialize",
    "class_subset",
    "DistillationLoss", "distill_finetune", "kl_divergence",
]
