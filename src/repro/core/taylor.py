"""Per-activation sensitivity scores (Eq. 3 and Eq. 4 of the paper).

Two implementations of the same quantity:

* :class:`TaylorScoreEngine` — the first-order approximation
  ``Θ'(a, x) = |a · ∂L/∂a|`` computed for *every* activation of every
  monitored layer with a single forward + backward pass per batch. This is
  what the framework uses, exactly as the paper prescribes for efficiency.
* :class:`ExactZeroingEngine` — the literal definition
  ``Θ(a, x) = |L(x) − L(x; a←0)|``, one extra forward pass per activation.
  Exponentially slower; kept as ground truth for validating the Taylor
  approximation (and benchmarked against it in ``bench_kernels.py``).

The loss used is the plain cross entropy of the pre-trained network by
default — sensitivities are taken on "the cost function of the pre-trained
neural network" — but any callable mapping logits/targets to a scalar
tensor can be substituted.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn import Module, cross_entropy
from ..tensor import Tensor
from .hooks import ActivationRecorder, activation_mask

__all__ = ["TaylorScoreEngine", "ExactZeroingEngine"]

LossFn = Callable[[Tensor, np.ndarray], Tensor]


def _per_sample_ce(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Summed (not averaged) cross entropy.

    Summing keeps every sample's gradient independent of batch size, so a
    single backward pass yields each image's own ∂L(x_j)/∂a on its slice of
    the batched activation tensor.
    """
    return cross_entropy(logits, targets, reduction="sum")


class TaylorScoreEngine:
    """Batched first-order Taylor sensitivities (Eq. 4).

    Parameters
    ----------
    model:
        Network under evaluation (left in eval mode during scoring so batch
        statistics are not perturbed).
    layer_paths:
        Dotted paths of the layers whose output activations are scored —
        the producers of the prunable filter groups.
    loss_fn:
        Scalar loss; defaults to summed cross entropy (see module doc).
    """

    def __init__(self, model: Module, layer_paths: list[str],
                 loss_fn: LossFn | None = None):
        self.model = model
        self.layer_paths = list(layer_paths)
        self.loss_fn = loss_fn or _per_sample_ce

    def scores(self, images: np.ndarray,
               targets: np.ndarray) -> dict[str, np.ndarray]:
        """Taylor score of every activation, for every image in the batch.

        Returns
        -------
        Mapping from layer path to an array shaped like the layer's output
        ``(M, C, H, W)`` (or ``(M, F)`` for linear layers): entry
        ``[j, ...]`` is ``Θ'(a, x_j)``.
        """
        was_training = self.model.training
        self.model.eval()
        try:
            self.model.zero_grad()
            with ActivationRecorder(self.model, self.layer_paths) as recorder:
                logits = self.model(Tensor(np.asarray(images, dtype=np.float32)))
                loss = self.loss_fn(logits, np.asarray(targets, dtype=np.intp))
                loss.backward()
                result = {}
                for path in self.layer_paths:
                    act = recorder.activations[path]
                    if act.grad is None:
                        raise RuntimeError(
                            f"activation of {path!r} received no gradient; "
                            "is the layer on the path to the loss?")
                    result[path] = np.abs(act.data * act.grad)
            self.model.zero_grad()
            return result
        finally:
            self.model.train(was_training)


class ExactZeroingEngine:
    """Literal ablation sensitivities (Eq. 3); O(#activations) forwards.

    Only practical for tiny layers — the raison d'être of the Taylor
    approximation. Evaluates one image at a time.
    """

    def __init__(self, model: Module, layer_paths: list[str],
                 loss_fn: LossFn | None = None):
        self.model = model
        self.layer_paths = list(layer_paths)
        self.loss_fn = loss_fn or _per_sample_ce

    def _loss_value(self, image: np.ndarray, target: int) -> float:
        logits = self.model(Tensor(image[None]))
        return float(self.loss_fn(logits, np.array([target])).data)

    def scores(self, images: np.ndarray,
               targets: np.ndarray) -> dict[str, np.ndarray]:
        """Exact Θ for every activation and image (same layout as Taylor)."""
        from ..tensor import inference_mode
        was_training = self.model.training
        self.model.eval()
        try:
            with inference_mode():
                # Shapes of each monitored activation, via one probe pass.
                with ActivationRecorder(self.model, self.layer_paths) as rec:
                    self.model(Tensor(images[:1].astype(np.float32)))
                    shapes = {p: rec.activations[p].shape[1:]
                              for p in self.layer_paths}
                result = {p: np.zeros((len(images),) + s, dtype=np.float32)
                          for p, s in shapes.items()}
                for j, (image, target) in enumerate(zip(images, targets)):
                    base = self._loss_value(image, int(target))
                    for path in self.layer_paths:
                        shape = shapes[path]
                        flat = int(np.prod(shape))
                        for idx in range(flat):
                            mask = np.ones((1,) + shape, dtype=np.float32)
                            mask.reshape(-1)[idx] = 0.0
                            with activation_mask(self.model, path, mask):
                                ablated = self._loss_value(image, int(target))
                            result[path][j].reshape(-1)[idx] = abs(base - ablated)
            return result
        finally:
            self.model.train(was_training)
