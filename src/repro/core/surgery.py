"""Physical filter removal (structured-pruning surgery).

Given a model's :class:`~repro.models.FilterGroup` metadata and, per group,
the indices of filters to *keep*, this module rebuilds every affected
parameter array:

* the producer's output channels (conv filters or linear units),
* its batch norm's affine parameters and running statistics,
* every consumer's input channels (with spatial grouping when a flattened
  feature map feeds a linear layer).

Surgery is in-place and destructive: the model afterwards is a genuinely
smaller network (fewer parameters, fewer FLOPs) — not a masked one. This
matches the paper's hardware motivation for structured pruning over
masking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Linear, Module
from ..models.pruning_spec import FilterGroup
from ..resilience.transaction import transactional

__all__ = ["group_sizes", "prune_groups", "SurgeryRecord"]


@dataclass
class SurgeryRecord:
    """What one call to :func:`prune_groups` removed.

    Attributes
    ----------
    removed:
        ``{group name: sorted removed filter indices}`` (original indexing).
    kept:
        ``{group name: kept filter indices in order}``.
    """

    removed: dict[str, np.ndarray] = field(default_factory=dict)
    kept: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_removed(self) -> int:
        return sum(len(v) for v in self.removed.values())


def group_sizes(model: Module, groups: list[FilterGroup]) -> dict[str, int]:
    """Current number of filters in each group's producer."""
    sizes = {}
    for group in groups:
        producer = model.get_module(group.conv)
        if isinstance(producer, Conv2d):
            sizes[group.name] = producer.out_channels
        elif isinstance(producer, Linear):
            sizes[group.name] = producer.out_features
        else:
            raise TypeError(
                f"group {group.name!r} producer is {type(producer).__name__}, "
                "expected Conv2d or Linear")
    return sizes


def _validate_keep(keep: np.ndarray, total: int, group: FilterGroup) -> np.ndarray:
    keep = np.asarray(sorted(set(int(i) for i in keep)), dtype=np.intp)
    if len(keep) == 0:
        raise ValueError(f"group {group.name!r}: cannot remove every filter")
    if len(keep) < group.min_channels:
        raise ValueError(
            f"group {group.name!r}: keeping {len(keep)} filters violates "
            f"min_channels={group.min_channels}")
    if keep[0] < 0 or keep[-1] >= total:
        raise ValueError(
            f"group {group.name!r}: keep indices out of range [0, {total})")
    return keep


def prune_groups(model: Module, groups: list[FilterGroup],
                 keep_indices: dict[str, np.ndarray]) -> SurgeryRecord:
    """Remove filters from the model, keeping only the listed indices.

    Parameters
    ----------
    model:
        Model to mutate.
    groups:
        The model's dependency metadata (``model.prunable_groups()``).
    keep_indices:
        ``{group name: indices of filters to keep}``; groups not listed are
        left untouched.

    Returns
    -------
    A :class:`SurgeryRecord` of what was removed.

    Raises
    ------
    ValueError
        If any group would be emptied, shrunk below its ``min_channels``,
        or given out-of-range indices. The model is not modified when
        validation fails.

    Notes
    -----
    The mutation phase is **transactional**: if anything raises after the
    first array was rewritten (a mis-typed consumer, an I/O error, an
    injected chaos fault), the model is rolled back to its exact
    pre-surgery state — weights, buffers and channel counts — before the
    exception propagates. Surgery is therefore all-or-nothing.
    """
    by_name = {g.name: g for g in groups}
    unknown = set(keep_indices) - set(by_name)
    if unknown:
        raise KeyError(f"unknown group names: {sorted(unknown)}")

    sizes = group_sizes(model, groups)
    validated: dict[str, np.ndarray] = {}
    for name, keep in keep_indices.items():
        validated[name] = _validate_keep(keep, sizes[name], by_name[name])

    record = SurgeryRecord()
    with transactional(model):
        for name, keep in validated.items():
            group = by_name[name]
            total = sizes[name]
            producer = model.get_module(group.conv)
            producer.select_output_channels(keep)
            if group.bn is not None:
                bn = model.get_module(group.bn)
                if not isinstance(bn, BatchNorm2d):
                    raise TypeError(f"group {name!r}: {group.bn!r} is not BatchNorm2d")
                bn.select_channels(keep)
            for consumer in group.consumers:
                target = model.get_module(consumer.path)
                if consumer.kind == "conv":
                    if not isinstance(target, Conv2d):
                        raise TypeError(
                            f"group {name!r}: consumer {consumer.path!r} is not Conv2d")
                    target.select_input_channels(keep)
                else:
                    if not isinstance(target, Linear):
                        raise TypeError(
                            f"group {name!r}: consumer {consumer.path!r} is not Linear")
                    target.select_input_channels(keep, group_size=consumer.group_size)
            removed = np.setdiff1d(np.arange(total), keep)
            record.removed[name] = removed
            record.kept[name] = keep
    return record
