"""The modified cost function of the paper (Eq. 1–2).

``L = L_CE + λ1 · L1 + λ2 · L_orth``

* ``L1`` pushes weight matrices towards sparsity so unimportant filters
  collapse to near-zero (few-class) importance;
* ``L_orth`` pushes filters of each convolutional layer towards
  orthogonality so the surviving filters capture diverse features that are
  useful for *many* classes.

Three interchangeable computations of the orthogonality term are provided:

``kernel``
    ``‖Ǩ Ǩᵀ − I‖_F`` on the flattened kernel matrix ``Ǩ ∈ R^{O×Ck²}``.
    O(O²Ck²); the form used by default during training.
``conv``
    Self-convolution form from OrthConv [31]: convolving the filter bank
    with itself must produce a spatial delta for like pairs and zero for
    unlike pairs. Accounts for overlapping sliding positions (stride < k).
``toeplitz``
    The literal ‖KKᵀ − I‖ on the doubly-block-Toeplitz expansion of
    Fig. 2 — exact but quadratic in spatial size; meant for small layers
    and as the reference the efficient forms are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Conv2d, Linear, Module
from ..tensor import Tensor, conv as tconv, ops
from .toeplitz import toeplitz_matrix_tensor

__all__ = ["l1_regularizer", "orthogonality_term", "OrthMode",
           "ModifiedLoss", "LossTerms", "FusedRegularizer"]

OrthMode = str  # "kernel" | "conv" | "toeplitz"

# Identity Tensors used by the Gram-matrix penalties, cached by size:
# these were rebuilt (np.eye allocation + Tensor wrap) on every batch for
# every layer. The cached tensors are constants — never mutated by any op
# and never requiring grad — so sharing one instance across graphs is safe.
_EYE_CACHE: dict[int, Tensor] = {}


def _eye(n: int) -> Tensor:
    cached = _EYE_CACHE.get(n)
    if cached is None:
        cached = _EYE_CACHE[n] = Tensor(np.eye(n, dtype=np.float32))
    return cached


def l1_regularizer(model: Module) -> Tensor:
    """Σ_l ‖W_l‖₁ over all conv and linear weight matrices (Eq. 2, left).

    Biases and batch-norm affine parameters are excluded: the paper
    penalises *weight matrices*, and shrinking BN scales is the mechanism
    of a different method (SSS [27]) implemented as a baseline.
    """
    total: Tensor | None = None
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            term = ops.sum(ops.abs(module.weight))
            total = term if total is None else ops.add(total, term)
    if total is None:
        raise ValueError("model contains no conv or linear layers")
    return total


def _orth_kernel_rows(weight: Tensor) -> Tensor:
    """‖W Wᵀ − I‖_F treating each output row of a 2-D weight as a filter."""
    o = weight.shape[0]
    gram = ops.matmul(weight, ops.transpose(weight))
    diff = ops.sub(gram, _eye(o))
    return ops.sqrt(ops.sum(ops.mul(diff, diff)) + 1e-12)


def _orth_kernel(weight: Tensor) -> Tensor:
    """‖Ǩ Ǩᵀ − I‖_F for flattened kernels Ǩ (O, C·k²)."""
    o = weight.shape[0]
    flat = ops.reshape(weight, (o, -1))
    return _orth_kernel_rows(flat)


def _orth_conv(weight: Tensor, stride: int = 1) -> Tensor:
    """Self-convolution orthogonality (OrthConv [31]).

    Treat the filter bank ``(O, C, k, k)`` as a batch of O images and
    convolve it with itself. Rows of the Toeplitz expansion are the filters
    shifted by multiples of the stride, so the padding is chosen as the
    largest multiple of the stride not exceeding ``k-1`` — every sampled
    tap then corresponds to an actual pair of sliding positions, with the
    zero-shift (kernel Gram) tap at the centre. Orthogonal expansion K
    requires the result to equal a delta: 1 for the like-pair zero-shift
    tap, 0 elsewhere.
    """
    o, _, k, _ = weight.shape
    pad = (k - 1) // stride * stride
    z = tconv.conv2d(weight, weight, stride=stride, padding=pad)
    target = np.zeros(z.shape, dtype=np.float32)
    centre = pad // stride
    target[np.arange(o), np.arange(o), centre, centre] = 1.0
    diff = ops.sub(z, Tensor(target))
    return ops.sqrt(ops.sum(ops.mul(diff, diff)) + 1e-12)


def _orth_toeplitz(weight: Tensor, input_size: int, stride: int, padding: int) -> Tensor:
    """Literal ‖KKᵀ − I‖_F on the Fig. 2 expansion."""
    matrix = toeplitz_matrix_tensor(weight, input_size, stride=stride,
                                    padding=padding)
    rows = matrix.shape[0]
    gram = ops.matmul(matrix, ops.transpose(matrix))
    diff = ops.sub(gram, _eye(rows))
    return ops.sqrt(ops.sum(ops.mul(diff, diff)) + 1e-12)


def orthogonality_term(model: Module, mode: OrthMode = "kernel",
                       input_sizes: dict[str, int] | None = None) -> Tensor:
    """Σ_l ‖K Kᵀ − I‖ over convolutional layers (Eq. 2, right).

    Parameters
    ----------
    mode:
        One of ``"kernel"``, ``"conv"``, ``"toeplitz"`` (see module doc).
    input_sizes:
        Required for ``"toeplitz"``: spatial input size per conv path.
    """
    total: Tensor | None = None
    for path, module in model.named_modules():
        if mode == "kernel" and isinstance(module, Linear):
            # The class-aware story applies to MLP neurons too (paper
            # Fig. 1); in kernel mode the rows of a linear weight matrix
            # are treated as the "filters" to orthogonalise.
            term = _orth_kernel_rows(module.weight)
            total = term if total is None else ops.add(total, term)
            continue
        if not isinstance(module, Conv2d):
            continue
        if mode == "kernel":
            term = _orth_kernel(module.weight)
        elif mode == "conv":
            term = _orth_conv(module.weight, stride=module.stride)
        elif mode == "toeplitz":
            if input_sizes is None or path not in input_sizes:
                raise ValueError(f"toeplitz mode needs input size for {path!r}")
            term = _orth_toeplitz(module.weight, input_sizes[path],
                                  module.stride, module.padding)
        else:
            raise ValueError(f"unknown orthogonality mode {mode!r}")
        total = term if total is None else ops.add(total, term)
    if total is None:
        raise ValueError("model contains no convolutional layers")
    return total


@dataclass
class LossTerms:
    """Decomposition of one evaluation of the modified cost."""

    total: Tensor
    cross_entropy: float
    l1: float
    orth: float


class ModifiedLoss:
    """The paper's training objective (Eq. 1), ready to backpropagate.

    Parameters
    ----------
    lambda1:
        Coefficient of the L1 term (paper: 1e-4).
    lambda2:
        Coefficient of the orthogonality term (paper: 1e-2).
    orth_mode:
        Orthogonality computation (see :func:`orthogonality_term`).
    track_terms:
        When False the per-term ``float(...)`` materialisations are
        skipped and :class:`LossTerms` reports 0.0 for ``l1``/``orth`` —
        for history-less loops that only backpropagate ``total``.

    With both coefficients zero this reduces to plain cross entropy, which
    is how the "no regularisation" ablation row of Table III is produced.
    """

    def __init__(self, lambda1: float = 1e-4, lambda2: float = 1e-2,
                 orth_mode: OrthMode = "kernel", track_terms: bool = True):
        if lambda1 < 0 or lambda2 < 0:
            raise ValueError("regularisation coefficients must be non-negative")
        self.lambda1 = lambda1
        self.lambda2 = lambda2
        self.orth_mode = orth_mode
        self.track_terms = track_terms

    def __call__(self, model: Module, logits: Tensor,
                 targets: np.ndarray) -> LossTerms:
        from ..nn import cross_entropy
        ce = cross_entropy(logits, targets)
        total = ce
        l1_value = 0.0
        orth_value = 0.0
        if self.lambda1 > 0:
            l1 = l1_regularizer(model)
            if self.track_terms:
                l1_value = float(l1.data)
            total = ops.add(total, ops.mul(Tensor(np.float32(self.lambda1)), l1))
        if self.lambda2 > 0:
            orth = orthogonality_term(model, mode=self.orth_mode)
            if self.track_terms:
                orth_value = float(orth.data)
            total = ops.add(total, ops.mul(Tensor(np.float32(self.lambda2)), orth))
        return LossTerms(total=total, cross_entropy=float(ce.data),
                         l1=l1_value, orth=orth_value)


class FusedRegularizer:
    """Closed-form gradients of the Eq. 2 penalties, injected into ``.grad``.

    The autograd path rebuilds a full penalty graph over *all* weights on
    every batch; but both penalties have analytic gradients:

    * ``d/dW ‖W‖₁ = sign(W)`` (0 at 0, matching the autograd ``abs``);
    * for the kernel-mode term ``f = sqrt(‖D‖_F² + ε)`` with
      ``D = ŴŴᵀ − I`` (Ŵ the flattened kernels, D symmetric):
      ``df/dŴ = 2 D Ŵ / f``.

    :meth:`accumulate` adds ``λ1·sign(W) + λ2·dforth/dW`` directly into
    each weight's ``.grad`` (call it *after* the cross-entropy backward)
    and returns the penalty values, which fall out of the gradient
    computation for free. Agreement with the autograd path is pinned by
    gradcheck in ``tests/parallel/test_fused_regularizers.py``.

    Only ``orth_mode="kernel"`` (the training default) has a closed form
    here; ``conv``/``toeplitz`` must keep using the autograd path.
    """

    def __init__(self, lambda1: float = 1e-4, lambda2: float = 1e-2,
                 orth_mode: OrthMode = "kernel"):
        if lambda1 < 0 or lambda2 < 0:
            raise ValueError("regularisation coefficients must be non-negative")
        if orth_mode != "kernel" and lambda2 > 0:
            raise ValueError(
                f"FusedRegularizer has closed-form gradients only for "
                f"orth_mode='kernel', not {orth_mode!r}; use the autograd "
                "ModifiedLoss for the conv/toeplitz forms")
        self.lambda1 = lambda1
        self.lambda2 = lambda2
        self.orth_mode = orth_mode

    def accumulate(self, model: Module) -> tuple[float, float]:
        """Add the scaled penalty gradients to ``model``; return values.

        Returns ``(l1_value, orth_value)`` — the same float32-accumulated
        penalty values the autograd path reports.
        """
        l1_total = np.float32(0.0)
        orth_total = np.float32(0.0)
        saw_weight = False
        for _, module in model.named_modules():
            if not isinstance(module, (Conv2d, Linear)):
                continue
            saw_weight = True
            weight = module.weight
            data = weight.data
            grad = np.zeros_like(data)
            if self.lambda1 > 0:
                l1_total = l1_total + np.sum(np.abs(data))
                grad += self.lambda1 * np.sign(data)
            if self.lambda2 > 0:
                flat = data.reshape(data.shape[0], -1)
                diff = flat @ flat.T
                diff[np.diag_indices_from(diff)] -= np.float32(1.0)
                value = np.sqrt(np.sum(diff * diff) + np.float32(1e-12))
                orth_total = orth_total + value
                gflat = (np.float32(2.0) / value) * (diff @ flat)
                grad += self.lambda2 * gflat.reshape(data.shape)
            if weight.grad is None:
                weight.grad = grad
            else:
                # One in-place add of the fully-assembled penalty gradient:
                # elementwise identical to ``weight.grad + grad`` (the
                # association of the penalty terms inside ``grad`` is
                # unchanged), but never reallocates — ``weight.grad`` may
                # be a view into the sharded trainer's preallocated
                # reduction accumulators.
                np.add(weight.grad, grad, out=weight.grad)
        if not saw_weight:
            raise ValueError("model contains no conv or linear layers")
        return float(l1_total), float(orth_total)
