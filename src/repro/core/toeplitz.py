"""Doubly-block-Toeplitz expansion of convolution (paper Fig. 2).

The paper's orthogonality regulariser is defined on the matrix ``K``
obtained by unrolling a convolutional layer into the sparse matrix that
multiplies the *flattened input*: each row of ``K`` is the filter placed at
one sliding position. For a 1×2×2 filter over a 3×3 input with stride 1,
``K`` is the 4×9 matrix of the paper's Figure 2.

Building ``K`` explicitly is quadratic in the spatial size, so training
uses the equivalent efficient forms in :mod:`repro.core.regularizers`; the
exact construction here is the ground truth those forms are tested against,
and is itself differentiable (the matrix is a gather of weight entries, and
gathers backpropagate through ``ops.getitem``).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, conv_output_size, ops

__all__ = ["toeplitz_indices", "toeplitz_matrix", "toeplitz_matrix_tensor"]


def toeplitz_indices(out_channels: int, in_channels: int, kernel: int,
                     input_size: int, stride: int = 1, padding: int = 0
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Index map for the Toeplitz expansion of a conv weight.

    Returns
    -------
    (gather, mask):
        ``gather`` is an integer array of shape
        ``(out_channels * P, in_channels * S²)`` holding, for every entry of
        the expanded matrix, the flat index into ``weight.reshape(-1)`` that
        supplies it (0 where unused); ``mask`` is 1.0 where an entry is a
        real weight and 0.0 where it is structurally zero. ``P`` is the
        number of sliding positions and ``S`` the (padded) input size.
        ``K = weight.flat[gather] * mask``.
    """
    if kernel > input_size + 2 * padding:
        raise ValueError("kernel larger than padded input")
    size_p = input_size + 2 * padding
    out_size = conv_output_size(input_size, kernel, stride, padding)
    positions = out_size * out_size
    cols = size_p * size_p

    gather = np.zeros((out_channels * positions, in_channels * cols), dtype=np.intp)
    mask = np.zeros_like(gather, dtype=np.float32)
    # flat weight layout: ((o * in_channels + c) * kernel + ki) * kernel + kj
    for o in range(out_channels):
        for pi in range(out_size):
            for pj in range(out_size):
                row = o * positions + pi * out_size + pj
                top, left = pi * stride, pj * stride
                for c in range(in_channels):
                    for ki in range(kernel):
                        for kj in range(kernel):
                            col = c * cols + (top + ki) * size_p + (left + kj)
                            widx = ((o * in_channels + c) * kernel + ki) * kernel + kj
                            gather[row, col] = widx
                            mask[row, col] = 1.0
    return gather, mask


def toeplitz_matrix(weight: np.ndarray, input_size: int, stride: int = 1,
                    padding: int = 0) -> np.ndarray:
    """Materialise ``K`` for a numpy weight ``(O, C, k, k)``.

    The product ``K @ x_padded.reshape(-1)`` equals the convolution output
    (flattened, channel-major) — the property tested in
    ``tests/core/test_toeplitz.py``.
    """
    o, c, k, k2 = weight.shape
    if k != k2:
        raise ValueError("only square kernels supported")
    gather, mask = toeplitz_indices(o, c, k, input_size, stride, padding)
    return weight.reshape(-1)[gather] * mask


def toeplitz_matrix_tensor(weight: Tensor, input_size: int, stride: int = 1,
                           padding: int = 0) -> Tensor:
    """Differentiable Toeplitz expansion of a weight tensor.

    Gradients flow back to ``weight`` through the gather; used by the exact
    variant of the orthogonality regulariser.
    """
    o, c, k, _ = weight.shape
    gather, mask = toeplitz_indices(o, c, k, input_size, stride, padding)
    flat = ops.reshape(weight, (-1,))
    gathered = ops.getitem(flat, gather.reshape(-1))
    matrix = ops.reshape(gathered, gather.shape)
    return ops.mul(matrix, Tensor(mask))
