"""Soft (masked) pruning for what-if analysis.

Physical surgery is destructive; during exploration it is often useful to
*simulate* a pruning decision first — zero the candidate filters' outputs
with hooks, measure accuracy, then either commit (surgery) or revert
(remove hooks). This module provides that workflow:

    with FilterMasks(model, {"features.0": [1, 3]}) as masks:
        _, acc = evaluate_model(model, test)     # accuracy if pruned
    # hooks removed, model untouched

The masked forward is numerically identical to pruning the same filters
*followed by no fine-tuning* (verified in tests), which is exactly the
"accuracy after prune" column the framework records each iteration.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..nn import Module
from ..tensor import Tensor, ops

__all__ = ["FilterMasks", "masked_accuracy", "simulate_decision"]


class FilterMasks(contextlib.AbstractContextManager):
    """Zero selected output channels of selected layers during forwards.

    Parameters
    ----------
    model:
        Model to mask (not modified structurally).
    masked_channels:
        ``{layer path: iterable of channel indices to zero}``.
    """

    def __init__(self, model: Module, masked_channels: dict[str, np.ndarray]):
        self.model = model
        self.masked_channels = {path: np.asarray(idx, dtype=np.intp)
                                for path, idx in masked_channels.items()}
        self._handles = []

    def __enter__(self) -> "FilterMasks":
        for path, idx in self.masked_channels.items():
            module = self.model.get_module(path)

            def hook(mod, args, out, idx=idx):
                mask = np.ones(out.shape[1], dtype=np.float32)
                mask[idx] = 0.0
                shape = (1, -1) + (1,) * (out.ndim - 2)
                return ops.mul(out, Tensor(mask.reshape(shape)))

            self._handles.append(module.register_forward_hook(hook))
        return self

    def __exit__(self, *exc) -> None:
        for handle in self._handles:
            handle.remove()
        self._handles.clear()


def masked_accuracy(model: Module, dataset,
                    masked_channels: dict[str, np.ndarray],
                    batch_size: int = 256) -> float:
    """Accuracy of the model with the given channels zeroed."""
    from .trainer import evaluate_model
    with FilterMasks(model, masked_channels):
        _, acc = evaluate_model(model, dataset, batch_size)
    return acc


def simulate_decision(model: Module, dataset, decision,
                      batch_size: int = 256) -> float:
    """Accuracy if a :class:`~repro.core.pruner.PruningDecision` were applied.

    Group names are assumed to be producer paths (true for all zoo
    metadata), so the decision's removal map doubles as a mask map.
    """
    return masked_accuracy(model, dataset, decision.remove, batch_size)
