"""Soft (masked) pruning for what-if analysis.

Physical surgery is destructive; during exploration it is often useful to
*simulate* a pruning decision first — zero the candidate filters' outputs
with hooks, measure accuracy, then either commit (surgery) or revert
(remove hooks). This module provides that workflow:

    with FilterMasks(model, {"features.0": [1, 3]}) as masks:
        _, acc = evaluate_model(model, test)     # accuracy if pruned
    # hooks removed, model untouched

For the masked forward to be numerically identical to pruning the same
filters *followed by no fine-tuning*, the mask must be applied at the last
point of the filter group that surgery removes: the batch norm bound to the
producer when there is one, otherwise the producer itself. Zeroing the
convolution's output is **not** equivalent once batch-norm statistics are
non-trivial — BN maps a zeroed channel to the affine constant
``beta - gamma * mean / sqrt(var + eps)``, which then leaks into every
consumer, while surgery removes the channel entirely. Use
:func:`group_mask_paths` / :meth:`FilterMasks.for_groups` to mask at the
surgery-equivalent point; the equivalence is enforced by
:mod:`repro.verify.invariants`.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..models.pruning_spec import FilterGroup
from ..nn import Module
from ..tensor import Tensor, ops

__all__ = ["FilterMasks", "group_mask_paths", "masked_accuracy",
           "simulate_decision"]


def group_mask_paths(groups: list[FilterGroup]) -> dict[str, str]:
    """Per group, the module path where masking is equivalent to surgery.

    Surgery removes the producer's output channels *and* the bound batch
    norm's parameters/statistics, so the masked forward must zero the
    channels after the batch norm (when present) to match the pruned
    network exactly. Everything between that point and the consumers
    (ReLU, pooling, flatten) maps zero channels to zero channels.
    """
    return {g.name: (g.bn if g.bn is not None else g.conv) for g in groups}


class FilterMasks(contextlib.AbstractContextManager):
    """Zero selected output channels of selected layers during forwards.

    Parameters
    ----------
    model:
        Model to mask (not modified structurally).
    masked_channels:
        ``{layer path: iterable of channel indices to zero}``.
    """

    def __init__(self, model: Module, masked_channels: dict[str, np.ndarray]):
        self.model = model
        self.masked_channels = {path: np.asarray(idx, dtype=np.intp)
                                for path, idx in masked_channels.items()}
        self._handles = []

    def __enter__(self) -> "FilterMasks":
        for path, idx in self.masked_channels.items():
            module = self.model.get_module(path)

            def hook(mod, args, out, idx=idx):
                mask = np.ones(out.shape[1], dtype=np.float32)
                mask[idx] = 0.0
                shape = (1, -1) + (1,) * (out.ndim - 2)
                return ops.mul(out, Tensor(mask.reshape(shape)))

            self._handles.append(module.register_forward_hook(hook))
        return self

    def __exit__(self, *exc) -> None:
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    @classmethod
    def for_groups(cls, model: Module, groups: list[FilterGroup],
                   masked_channels: dict[str, np.ndarray]) -> "FilterMasks":
        """Build masks keyed by *group name*, hooked at the surgery point.

        Parameters
        ----------
        masked_channels:
            ``{group name: channel indices to zero}`` — the same keying as a
            :class:`~repro.core.pruner.PruningDecision`.
        """
        paths = group_mask_paths(groups)
        unknown = set(masked_channels) - set(paths)
        if unknown:
            raise KeyError(f"unknown group names: {sorted(unknown)}")
        return cls(model, {paths[name]: idx
                           for name, idx in masked_channels.items()})


def masked_accuracy(model: Module, dataset,
                    masked_channels: dict[str, np.ndarray],
                    batch_size: int = 256) -> float:
    """Accuracy of the model with the given channels zeroed."""
    from .trainer import evaluate_model
    with FilterMasks(model, masked_channels):
        _, acc = evaluate_model(model, dataset, batch_size)
    return acc


def simulate_decision(model: Module, dataset, decision,
                      batch_size: int = 256) -> float:
    """Accuracy if a :class:`~repro.core.pruner.PruningDecision` were applied.

    Decisions are keyed by group name; when the model publishes pruning
    metadata the mask is applied at each group's surgery-equivalent point
    (after the batch norm when present) so the simulated accuracy matches
    what real surgery would measure. Models without metadata fall back to
    masking the named paths directly.
    """
    from ..models.pruning_spec import PrunableModel
    masked = decision.remove
    if isinstance(model, PrunableModel):
        paths = group_mask_paths(model.prunable_groups())
        masked = {paths.get(name, name): idx for name, idx in masked.items()}
    return masked_accuracy(model, dataset, masked, batch_size)
