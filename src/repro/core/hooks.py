"""Activation capture and ablation utilities.

The importance engine needs two capabilities on top of the module system:

* **recording** — grab the output tensor of selected layers during a
  forward pass and mark it with ``retain_grad`` so a subsequent backward
  pass leaves ``∂L/∂a`` on it (Taylor scores, Eq. 4);
* **ablation** — re-run a forward pass with a chosen activation forced to
  zero (the exact sensitivity definition, Eq. 3).

Both are context managers so hooks can never leak into later training.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from ..nn import Module
from ..tensor import Tensor, ops

__all__ = ["ActivationRecorder", "activation_mask"]


class ActivationRecorder(contextlib.AbstractContextManager):
    """Record the output tensors of selected submodules.

    Parameters
    ----------
    model:
        Root module.
    paths:
        Dotted paths of the layers whose outputs to capture (the producers
        of prunable filter groups).

    Usage::

        with ActivationRecorder(model, paths) as rec:
            loss = loss_fn(model(x))
            loss.backward()
            act = rec.activations["features.0"]    # Tensor
            grad = rec.gradients["features.0"]     # ndarray
    """

    def __init__(self, model: Module, paths: list[str]):
        self.model = model
        self.paths = list(paths)
        self.activations: dict[str, Tensor] = {}
        self._handles = []

    def __enter__(self) -> "ActivationRecorder":
        for path in self.paths:
            module = self.model.get_module(path)

            def hook(mod, args, out, path=path):
                out.retain_grad()
                self.activations[path] = out

            self._handles.append(module.register_forward_hook(hook))
        return self

    def __exit__(self, *exc) -> None:
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    @property
    def gradients(self) -> dict[str, np.ndarray]:
        """Gradient array of each recorded activation (after backward)."""
        grads = {}
        for path, act in self.activations.items():
            if act.grad is None:
                raise RuntimeError(
                    f"no gradient recorded for {path!r}; run backward() first")
            grads[path] = act.grad
        return grads

    def clear(self) -> None:
        self.activations.clear()


@contextlib.contextmanager
def activation_mask(model: Module, path: str,
                    mask: np.ndarray) -> Iterator[None]:
    """Force the output of ``path`` to ``output * mask`` during forwards.

    Setting a single entry of ``mask`` to zero implements the paper's
    ``a ← 0`` ablation (Eq. 3).
    """
    module = model.get_module(path)
    mask_t = Tensor(np.asarray(mask, dtype=np.float32))

    def hook(mod, args, out):
        return ops.mul(out, mask_t)

    handle = module.register_forward_hook(hook)
    try:
        yield
    finally:
        handle.remove()
