"""Class-subset specialisation — a natural extension of class-aware scores.

The per-class importance matrix (Eq. 5–7) tells us *which* classes each
filter serves, not just how many. That makes a new operation possible that
magnitude- or activation-based criteria cannot express: **specialising** a
trained N-class network to a subset of classes by removing every filter
that is unimportant for all retained classes, and shrinking the classifier
to the retained logits.

This is the "different classes trigger different neuron paths" motivation
of the paper (Sec. II-B) taken to its operational conclusion, and is
covered by ``benchmarks/bench_specialize.py`` as an extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import Dataset, Subset
from ..flops import ModelProfile, flops_reduction, profile_model, pruning_ratio
from ..models.pruning_spec import PrunableModel
from ..nn import Linear, Module
from .importance import ImportanceConfig, ImportanceEvaluator
from .surgery import group_sizes, prune_groups
from .trainer import Trainer, TrainingConfig, evaluate_model

__all__ = ["SpecializationConfig", "SpecializationResult", "specialize",
           "class_subset"]


def class_subset(dataset: Dataset, classes: list[int]) -> Subset:
    """View of a dataset restricted to ``classes``, labels remapped to 0..k-1."""
    classes = list(classes)
    index_of = {c: i for i, c in enumerate(classes)}
    mask = np.isin(dataset.labels, classes)
    indices = np.flatnonzero(mask)

    class _Remapped(Subset):
        def __getitem__(self, index):
            image, label = super().__getitem__(index)
            return image, index_of[label]

        @property
        def labels(self):
            return np.array([index_of[l] for l in super().labels],
                            dtype=np.intp)

    return _Remapped(dataset, indices)


@dataclass(frozen=True)
class SpecializationConfig:
    """Hyperparameters of class-subset specialisation.

    Attributes
    ----------
    min_class_score:
        A filter survives when its importance for at least one retained
        class reaches this value (in [0, 1]; Eq. 7 per-class scores).
    finetune_epochs:
        Fine-tuning on the remapped subset after surgery.
    importance:
        Score-evaluation settings.
    """

    min_class_score: float = 0.5
    finetune_epochs: int = 3
    importance: ImportanceConfig = field(default_factory=ImportanceConfig)


@dataclass
class SpecializationResult:
    """Outcome of one specialisation."""

    model: Module
    classes: list[int]
    accuracy_before_finetune: float
    accuracy: float
    original_profile: ModelProfile
    final_profile: ModelProfile
    removed_per_group: dict[str, int] = field(default_factory=dict)

    @property
    def pruning_ratio(self) -> float:
        return pruning_ratio(self.original_profile, self.final_profile)

    @property
    def flops_reduction(self) -> float:
        return flops_reduction(self.original_profile, self.final_profile)


def specialize(model: Module, train_dataset: Dataset, test_dataset: Dataset,
               num_classes: int, classes: list[int],
               input_shape: tuple[int, int, int],
               config: SpecializationConfig | None = None,
               training: TrainingConfig | None = None,
               classifier_path: str = "classifier") -> SpecializationResult:
    """Specialise a trained N-class model to a subset of classes.

    Steps: score filters per class on the *full* task, drop filters that
    no retained class needs, shrink the classifier to the retained rows,
    then fine-tune on the remapped subset.

    The model is mutated in place and afterwards classifies
    ``len(classes)`` outputs, ordered as in ``classes``.
    """
    if not isinstance(model, PrunableModel):
        raise TypeError(
            f"{type(model).__name__} does not expose prunable_groups()")
    classes = list(classes)
    if not classes:
        raise ValueError("need at least one retained class")
    if len(set(classes)) != len(classes):
        raise ValueError("duplicate classes in subset")
    if any(c < 0 or c >= num_classes for c in classes):
        raise ValueError(f"classes must be in [0, {num_classes})")
    config = config or SpecializationConfig()
    training = training or TrainingConfig()

    original_profile = profile_model(model, input_shape)
    groups = model.prunable_groups()
    evaluator = ImportanceEvaluator(model, train_dataset, num_classes,
                                    config.importance)
    report = evaluator.evaluate([g.conv for g in groups])

    sizes = group_sizes(model, groups)
    keep_indices: dict[str, np.ndarray] = {}
    removed_per_group: dict[str, int] = {}
    for group in groups:
        per_class = report.per_class[group.conv][:, classes]
        keep = np.flatnonzero(per_class.max(axis=1) >= config.min_class_score)
        if len(keep) < group.min_channels:
            # Keep the filters most important for the retained classes.
            order = np.argsort(-per_class.max(axis=1), kind="stable")
            keep = np.sort(order[:group.min_channels])
        if len(keep) < sizes[group.name]:
            keep_indices[group.name] = keep
            removed_per_group[group.name] = sizes[group.name] - len(keep)
    if keep_indices:
        prune_groups(model, groups, keep_indices)

    # Shrink the classifier to the retained logits (in subset order).
    classifier = model.get_module(classifier_path)
    if not isinstance(classifier, Linear):
        raise TypeError(f"{classifier_path!r} is not a Linear classifier")
    weight = classifier.weight.data[classes].copy()
    bias = classifier.bias.data[classes].copy() if classifier.bias is not None else None
    classifier.select_output_channels(np.arange(len(classes)))
    classifier.weight.data = weight
    if bias is not None:
        classifier.bias.data = bias
    if hasattr(model, "num_classes"):
        model.num_classes = len(classes)

    subset_train = class_subset(train_dataset, classes)
    subset_test = class_subset(test_dataset, classes)
    _, acc_before = evaluate_model(model, subset_test, training.batch_size)
    if config.finetune_epochs > 0:
        Trainer(model, subset_train, subset_test, training).train(
            epochs=config.finetune_epochs)
    _, acc = evaluate_model(model, subset_test, training.batch_size)

    return SpecializationResult(
        model=model,
        classes=classes,
        accuracy_before_finetune=acc_before,
        accuracy=acc,
        original_profile=original_profile,
        final_profile=profile_model(model, input_shape),
        removed_per_group=removed_per_group,
    )
