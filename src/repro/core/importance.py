"""Class-aware filter importance (Sec. III-B, Eq. 5–7).

Pipeline per filter group (one prunable layer):

1. For each class ``n``, draw ``M`` training images of that class.
2. Compute Taylor scores ``Θ'`` of every activation for every image
   (:class:`~repro.core.taylor.TaylorScoreEngine`).
3. Binarise per image: ``s = 1 if Θ' > τ else 0``  (Eq. 5, τ = 1e-50).
4. Average over the M images → ``s_ave`` per activation       (Eq. 6).
5. Filter score w.r.t. class ``n`` = max over the filter's activations
   of ``s_ave``                                               (Eq. 7).
6. Total importance = Σ_n score(filter, n) ∈ [0, num_classes].

A filter whose total score is small matters for few classes and is a
pruning candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data import Dataset, EmptyDatasetError, per_class_images
from ..nn import Module
from .taylor import ExactZeroingEngine, TaylorScoreEngine

__all__ = ["ImportanceConfig", "ImportanceReport", "ImportanceEvaluator",
           "aggregate_scores"]


@dataclass(frozen=True)
class ImportanceConfig:
    """Hyperparameters of the importance evaluation.

    Attributes
    ----------
    images_per_class:
        ``M`` of Eq. 6; the paper uses 10 and reports that more images do
        not change the scores.
    tau:
        Activation-score threshold of Eq. 5 (paper: 1e-50 — effectively
        "any nonzero sensitivity counts"). Used when ``tau_mode`` is
        ``"absolute"``.
    tau_mode:
        ``"absolute"`` uses ``tau`` directly (the paper's definition).
        ``"quantile"`` sets the threshold per class evaluation to the
        ``tau_quantile``-quantile of all Taylor scores across the
        monitored layers. The paper's absolute 1e-50 relies on full-scale
        networks, where huge numbers of activations underflow to exactly
        zero; at reduced benchmark scale almost every activation carries
        *some* gradient, and the quantile mode restores the score spread
        the criterion needs while staying scale-free.
    tau_quantile:
        Quantile in (0, 1) for ``tau_mode="quantile"``.
    aggregation:
        ``"max"`` (Eq. 7) or ``"mean"`` — the latter is an ablation option
        exposed because the max is a deliberate design choice of the paper.
    use_exact:
        Use the exact zeroing engine instead of the Taylor approximation
        (validation only; drastically slower).
    seed:
        Seed for the per-class image sampling.
    """

    images_per_class: int = 10
    tau: float = 1e-50
    tau_mode: str = "absolute"
    tau_quantile: float = 0.25
    aggregation: str = "max"
    use_exact: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.images_per_class <= 0:
            raise ValueError("images_per_class must be positive")
        if self.aggregation not in ("max", "mean"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")
        if self.tau_mode not in ("absolute", "quantile"):
            raise ValueError(f"unknown tau_mode {self.tau_mode!r}")
        if not 0.0 < self.tau_quantile < 1.0:
            raise ValueError("tau_quantile must be in (0, 1)")


@dataclass
class ImportanceReport:
    """Importance scores of every filter in every evaluated group.

    Attributes
    ----------
    total:
        ``{group name: (num_filters,) float array}`` — the per-filter total
        score (sum over classes), the quantity thresholded when pruning.
    per_class:
        ``{group name: (num_filters, num_classes) float array}`` — the
        per-class decomposition (each entry in [0, 1]).
    num_classes:
        Number of classes the scores were computed over.
    """

    total: dict[str, np.ndarray] = field(default_factory=dict)
    per_class: dict[str, np.ndarray] = field(default_factory=dict)
    num_classes: int = 0

    def all_scores(self) -> np.ndarray:
        """Concatenated total scores across groups (analysis/histograms)."""
        if not self.total:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([self.total[g] for g in sorted(self.total)])

    def layer_means(self) -> dict[str, float]:
        """Average total score per group (Fig. 7 series)."""
        return {g: float(v.mean()) for g, v in self.total.items()}


def aggregate_scores(taylor_scores: np.ndarray, tau: float,
                     aggregation: str = "max") -> np.ndarray:
    """Collapse per-image activation scores to per-filter class scores.

    Parameters
    ----------
    taylor_scores:
        ``(M, C, ...)`` array of Θ' values for images of *one* class: first
        axis is the image, second the filter, the rest activation positions.

    Returns
    -------
    ``(C,)`` array — the filters' importance for this class (Eq. 5–7).
    """
    if taylor_scores.ndim < 2:
        raise ValueError("expected at least (M, C) scores")
    if taylor_scores.shape[0] == 0:
        raise ValueError(
            "aggregate_scores received scores for zero images (M=0); the "
            "Eq. 6 average would silently be NaN")
    indicator = (taylor_scores > tau).astype(np.float64)   # Eq. 5
    s_ave = indicator.mean(axis=0)                          # Eq. 6, (C, ...)
    if s_ave.ndim == 1:                                     # linear layer
        return s_ave
    flat = s_ave.reshape(s_ave.shape[0], -1)
    if aggregation == "max":
        return flat.max(axis=1)                             # Eq. 7
    return flat.mean(axis=1)


class ImportanceEvaluator:
    """Compute an :class:`ImportanceReport` for a model on a dataset.

    Parameters
    ----------
    model:
        Network whose prunable groups are to be scored.
    dataset:
        Labelled training dataset (scores are always computed on training
        data, per Sec. IV).
    num_classes:
        Total class count of the task.
    config:
        Evaluation hyperparameters.
    loss_fn:
        Optional override of the sensitivity loss (defaults to summed CE).
    workers:
        When positive, the per-class evaluations are sharded across a
        persistent worker pool (:mod:`repro.parallel`) — bit-identical to
        the serial loop under the same seed. The pool is created lazily
        on the first :meth:`evaluate` and reused while the model's shapes
        are unchanged; call :meth:`close` (or use the evaluator as a
        context manager) to release it. Requires the model to carry an
        architecture recipe (``model.arch``) and the default loss.
    processes:
        Physical process cap for the pool (default: ``min(workers,
        usable CPUs)``; see :func:`repro.parallel.resolve_processes`).
    supervision:
        Optional :class:`~repro.parallel.SupervisionConfig` tuning the
        self-healing layer of the pool (heartbeats, deadlines, respawn
        budget, serial fallback); defaults apply when ``None``.
    on_worker_event:
        Optional callback receiving each
        :class:`~repro.parallel.WorkerEvent` (crash/hang/respawn/degrade)
        — the framework uses it to journal supervision decisions.
    """

    def __init__(self, model: Module, dataset: Dataset, num_classes: int,
                 config: ImportanceConfig | None = None,
                 loss_fn: Callable | None = None, workers: int = 0,
                 processes: int | None = None, supervision=None,
                 on_worker_event=None):
        self.model = model
        self.dataset = dataset
        self.num_classes = num_classes
        self.config = config or ImportanceConfig()
        self.loss_fn = loss_fn
        self.workers = workers
        self.processes = processes
        self.supervision = supervision
        self.on_worker_event = on_worker_event
        self._session = None

    def close(self) -> None:
        """Release the worker pool and shared memory, if any."""
        if self._session is not None:
            self._session.close()
            self._session = None

    def __enter__(self) -> "ImportanceEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _evaluate_parallel(self, group_paths: list[str],
                           workers: int) -> ImportanceReport:
        if self.loss_fn is not None:
            raise ValueError(
                "a custom loss_fn is not supported with workers > 0 "
                "(closures cannot be shipped to worker processes); "
                "evaluate serially instead")
        from ..parallel.scoring import ScoringSession
        session = self._session
        if session is not None and not session.compatible(
                self.model, group_paths, workers):
            session.close()
            session = self._session = None
        if session is None:
            session = self._session = ScoringSession(
                self.model, self.dataset, self.num_classes, self.config,
                list(group_paths), workers, processes=self.processes,
                supervision=self.supervision,
                on_event=self.on_worker_event)
        return session.evaluate(self.dataset)

    @property
    def degraded(self) -> bool:
        """Whether the scoring pool fell back to serial execution."""
        return self._session is not None and self._session.degraded

    def evaluate(self, group_paths: list[str],
                 workers: int | None = None) -> ImportanceReport:
        """Score the filters of the given producer layers.

        One forward+backward pass per class evaluates all layers at once,
        so the cost is ``num_classes`` passes regardless of network size.
        With ``workers`` (argument or constructor default) positive, the
        classes are scored by the worker pool instead; the report is
        bit-identical to the serial loop's.
        """
        workers = self.workers if workers is None else workers
        if workers and workers > 0:
            return self._evaluate_parallel(list(group_paths), workers)
        cfg = self.config
        engine_cls = ExactZeroingEngine if cfg.use_exact else TaylorScoreEngine
        engine = engine_cls(self.model, group_paths, loss_fn=self.loss_fn)
        rng = np.random.default_rng(cfg.seed)

        per_class: dict[str, np.ndarray] = {}
        for class_index in range(self.num_classes):
            try:
                images = per_class_images(self.dataset, class_index,
                                          cfg.images_per_class, rng)
            except EmptyDatasetError as exc:
                raise EmptyDatasetError(
                    f"importance evaluation needs samples of every class "
                    f"(Eq. 6 averages over M images per class): {exc}"
                ) from exc
            targets = np.full(len(images), class_index, dtype=np.intp)
            taylor = engine.scores(images, targets)
            if cfg.tau_mode == "quantile":
                pooled = np.concatenate(
                    [taylor[p].reshape(-1) for p in group_paths])
                tau = float(np.quantile(pooled, cfg.tau_quantile))
            else:
                tau = cfg.tau
            for path in group_paths:
                class_scores = aggregate_scores(taylor[path], tau,
                                                cfg.aggregation)
                if path not in per_class:
                    per_class[path] = np.zeros(
                        (len(class_scores), self.num_classes), dtype=np.float64)
                per_class[path][:, class_index] = class_scores

        report = ImportanceReport(num_classes=self.num_classes)
        report.per_class = per_class
        report.total = {p: m.sum(axis=1) for p, m in per_class.items()}
        return report
