"""Knowledge-distillation-assisted accuracy recovery.

The paper recovers accuracy after each pruning iteration by plain
retraining. A standard strengthening (and the compression technique the
paper's related-work section lists next to pruning [7][8]) is to fine-tune
the pruned *student* against the unpruned *teacher*'s soft predictions:

    L = (1 − α) · CE(student, labels)
        + α · T² · KL(softmax(teacher/T) ‖ softmax(student/T))
        + λ1·L1 + λ2·L_orth          (the paper's regularisers, as usual)

Because the framework snapshots the model before each pruning iteration
anyway, the teacher comes for free. ``DistillationLoss`` plugs into
:class:`~repro.core.trainer.Trainer` wherever a :class:`ModifiedLoss`
fits, and ``distill_finetune`` is the convenience driver used by the
extension benchmark.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from ..nn import Module, cross_entropy
from ..tensor import Tensor, no_grad, ops
from .regularizers import (LossTerms, ModifiedLoss, l1_regularizer,
                           orthogonality_term)
from .trainer import Trainer, TrainingConfig

__all__ = ["DistillationLoss", "distill_finetune", "kl_divergence"]


def kl_divergence(teacher_logits: np.ndarray, student_logits: Tensor,
                  temperature: float = 2.0) -> Tensor:
    """Batch-mean KL(teacher ‖ student) over temperature-softened logits.

    The teacher term enters as constants (no gradient flows to the
    teacher); returns a scalar tensor differentiable w.r.t. the student.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    t = np.asarray(teacher_logits, dtype=np.float32) / temperature
    t_shift = t - t.max(axis=1, keepdims=True)
    t_exp = np.exp(t_shift)
    t_prob = t_exp / t_exp.sum(axis=1, keepdims=True)
    t_logprob = t_shift - np.log(t_exp.sum(axis=1, keepdims=True))

    s_logprob = ops.log_softmax(
        ops.mul(student_logits, Tensor(np.float32(1.0 / temperature))),
        axis=1)
    # KL = Σ p_t (log p_t − log p_s); the log p_t term is constant but
    # kept so the reported value is a true KL (non-negative).
    diff = ops.sub(Tensor(t_logprob), s_logprob)
    per_sample = ops.sum(ops.mul(Tensor(t_prob), diff), axis=1)
    return ops.mean(per_sample)


class DistillationLoss(ModifiedLoss):
    """Modified cost function with a teacher-matching KL term.

    Parameters
    ----------
    teacher:
        Frozen unpruned model (evaluated under ``no_grad``).
    alpha:
        Weight of the distillation term in ``[0, 1]``; the hard-label CE
        is scaled by ``1 − alpha``. ``alpha=0`` reduces exactly to the
        paper's modified loss.
    temperature:
        Softmax temperature ``T``; the KL term is scaled by ``T²`` per
        Hinton et al. so gradients stay comparable across temperatures.
    """

    def __init__(self, teacher: Module, alpha: float = 0.5,
                 temperature: float = 2.0, lambda1: float = 1e-4,
                 lambda2: float = 1e-2, orth_mode: str = "kernel"):
        super().__init__(lambda1=lambda1, lambda2=lambda2,
                         orth_mode=orth_mode)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.teacher = teacher
        self.alpha = alpha
        self.temperature = temperature
        self._inputs: Tensor | None = None

    def bind_inputs(self, images: Tensor) -> None:
        """Stash the current batch so the teacher can replay it.

        The trainer only hands the loss (model, logits, targets);
        :func:`distill_finetune` wraps the student's forward to call this
        with each batch before the loss is evaluated.
        """
        self._inputs = images

    def __call__(self, model, logits, targets) -> LossTerms:
        if self._inputs is None:
            raise RuntimeError(
                "DistillationLoss needs bind_inputs() before each batch; "
                "use distill_finetune() or wrap the student's forward")
        was_training = self.teacher.training
        self.teacher.eval()
        try:
            with no_grad():
                teacher_logits = self.teacher(self._inputs).data
        finally:
            self.teacher.train(was_training)
        self._inputs = None

        ce = cross_entropy(logits, targets)
        kl = kl_divergence(teacher_logits, logits, self.temperature)
        total = ops.add(
            ops.mul(Tensor(np.float32(1.0 - self.alpha)), ce),
            ops.mul(Tensor(np.float32(self.alpha * self.temperature ** 2)),
                    kl))
        l1_value = 0.0
        orth_value = 0.0
        if self.lambda1 > 0:
            l1 = l1_regularizer(model)
            l1_value = float(l1.data)
            total = ops.add(total,
                            ops.mul(Tensor(np.float32(self.lambda1)), l1))
        if self.lambda2 > 0:
            orth = orthogonality_term(model, mode=self.orth_mode)
            orth_value = float(orth.data)
            total = ops.add(total,
                            ops.mul(Tensor(np.float32(self.lambda2)), orth))
        return LossTerms(total=total, cross_entropy=float(ce.data),
                         l1=l1_value, orth=orth_value)


def distill_finetune(student: Module, teacher: Module,
                     train_dataset: Dataset, test_dataset: Dataset | None,
                     config: TrainingConfig, epochs: int,
                     alpha: float = 0.5, temperature: float = 2.0):
    """Fine-tune ``student`` against ``teacher`` for ``epochs``.

    Returns the training history. The teacher sees exactly the batches the
    student sees (captured by wrapping the student's forward); the
    wrapper shares the student's parameters, so the student is updated in
    place.
    """
    loss = DistillationLoss(teacher, alpha=alpha, temperature=temperature,
                            lambda1=config.lambda1, lambda2=config.lambda2,
                            orth_mode=config.orth_mode)

    class _BindingModel(Module):
        """Transparent wrapper stashing each batch for the teacher pass."""

        def __init__(self, inner):
            super().__init__()
            self.inner = inner

        def forward(self, x):
            loss.bind_inputs(x)
            return self.inner(x)

    wrapper = _BindingModel(student)
    trainer = Trainer(wrapper, train_dataset, test_dataset, config,
                      loss_fn=loss)
    return trainer.train(epochs=epochs)
