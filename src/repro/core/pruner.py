"""Pruning strategies (Sec. III-C) and their application to a model.

The paper selects pruning victims with **two stacked rules**:

* an importance-score *threshold* scaled with the class count (3 for the
  10-class task, 30 for the 100-class task), and
* a per-iteration *percentage cap* ("no more than 10%") that keeps the
  granularity fine.

Table II ablates the two rules individually, so each is a first-class
strategy here and the paper's combination is their composition.

Strategies see the concatenation of all groups' scores and return, per
group, the indices to *remove*; every group always retains at least its
``min_channels`` survivors (highest scores win ties).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.pruning_spec import FilterGroup
from ..nn import Module
from .importance import ImportanceReport
from .surgery import SurgeryRecord, group_sizes, prune_groups

__all__ = ["PruningStrategy", "ThresholdStrategy", "PercentageStrategy",
           "CombinedStrategy", "PruningDecision", "apply_pruning",
           "strategy_from_name"]


@dataclass
class PruningDecision:
    """Filters selected for removal in one iteration."""

    remove: dict[str, np.ndarray]

    @property
    def num_selected(self) -> int:
        return sum(len(v) for v in self.remove.values())

    def is_empty(self) -> bool:
        return self.num_selected == 0


class PruningStrategy:
    """Base class: maps importance scores to a :class:`PruningDecision`."""

    def select(self, scores: dict[str, np.ndarray],
               min_channels: dict[str, int]) -> PruningDecision:
        """Choose filters to remove.

        Parameters
        ----------
        scores:
            ``{group name: (num_filters,) total importance scores}``.
        min_channels:
            Per-group lower bound on surviving filters.
        """
        raise NotImplementedError

    @staticmethod
    def _protect(scores: dict[str, np.ndarray],
                 candidates: dict[str, np.ndarray],
                 min_channels: dict[str, int]) -> dict[str, np.ndarray]:
        """Drop candidates that would shrink a group below its minimum.

        When a group has more candidates than it can afford to lose, the
        *lowest-scoring* candidates are removed first.
        """
        result = {}
        for name, idx in candidates.items():
            limit = len(scores[name]) - min_channels.get(name, 1)
            if limit <= 0:
                continue
            if len(idx) > limit:
                order = np.argsort(scores[name][idx], kind="stable")
                idx = idx[order[:limit]]
            if len(idx):
                result[name] = np.sort(idx)
        return result


class ThresholdStrategy(PruningStrategy):
    """Remove every filter whose total score falls below ``threshold``.

    The paper scales the threshold with the class count: 3 for CIFAR-10,
    30 for CIFAR-100 — i.e. filters important for fewer than ~30% of
    classes go.
    """

    def __init__(self, threshold: float):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def select(self, scores, min_channels):
        candidates = {name: np.flatnonzero(s < self.threshold)
                      for name, s in scores.items()}
        candidates = {n: i for n, i in candidates.items() if len(i)}
        return PruningDecision(self._protect(scores, candidates, min_channels))

    def __repr__(self) -> str:
        return f"ThresholdStrategy(threshold={self.threshold})"


class PercentageStrategy(PruningStrategy):
    """Remove the globally lowest-scoring ``fraction`` of all filters."""

    def __init__(self, fraction: float):
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        self.fraction = fraction

    def select(self, scores, min_channels):
        names, flat_scores, flat_groups, flat_index = _flatten(scores)
        budget = int(np.floor(len(flat_scores) * self.fraction))
        if budget == 0:
            return PruningDecision({})
        order = np.argsort(flat_scores, kind="stable")[:budget]
        candidates: dict[str, list[int]] = {}
        for pos in order:
            candidates.setdefault(flat_groups[pos], []).append(flat_index[pos])
        candidates_np = {n: np.asarray(i, dtype=np.intp)
                         for n, i in candidates.items()}
        return PruningDecision(self._protect(scores, candidates_np, min_channels))

    def __repr__(self) -> str:
        return f"PercentageStrategy(fraction={self.fraction})"


class CombinedStrategy(PruningStrategy):
    """The paper's rule: below-threshold filters, capped at a percentage.

    Only filters under the importance threshold are candidates; if they
    exceed the per-iteration percentage budget, the lowest-scoring ones are
    taken first.
    """

    def __init__(self, threshold: float, max_fraction: float = 0.1):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0 < max_fraction <= 1:
            raise ValueError("max_fraction must be in (0, 1]")
        self.threshold = threshold
        self.max_fraction = max_fraction

    def select(self, scores, min_channels):
        names, flat_scores, flat_groups, flat_index = _flatten(scores)
        below = np.flatnonzero(flat_scores < self.threshold)
        if len(below) == 0:
            return PruningDecision({})
        budget = max(int(np.floor(len(flat_scores) * self.max_fraction)), 1)
        if len(below) > budget:
            order = np.argsort(flat_scores[below], kind="stable")[:budget]
            below = below[order]
        candidates: dict[str, list[int]] = {}
        for pos in below:
            candidates.setdefault(flat_groups[pos], []).append(flat_index[pos])
        candidates_np = {n: np.asarray(i, dtype=np.intp)
                         for n, i in candidates.items()}
        return PruningDecision(self._protect(scores, candidates_np, min_channels))

    def __repr__(self) -> str:
        return (f"CombinedStrategy(threshold={self.threshold}, "
                f"max_fraction={self.max_fraction})")


def _flatten(scores: dict[str, np.ndarray]):
    """Concatenate group scores, remembering each entry's origin."""
    names = sorted(scores)
    flat_scores = []
    flat_groups: list[str] = []
    flat_index: list[int] = []
    for name in names:
        s = scores[name]
        flat_scores.append(s)
        flat_groups.extend([name] * len(s))
        flat_index.extend(range(len(s)))
    return (names, np.concatenate(flat_scores) if flat_scores else np.zeros(0),
            flat_groups, np.asarray(flat_index, dtype=np.intp))


def strategy_from_name(name: str, threshold: float,
                       fraction: float) -> PruningStrategy:
    """Build one of the Table II strategies: percentage / threshold / both."""
    if name == "percentage":
        return PercentageStrategy(fraction)
    if name == "threshold":
        return ThresholdStrategy(threshold)
    if name in ("percentage+threshold", "combined", "both"):
        return CombinedStrategy(threshold, fraction)
    raise ValueError(f"unknown strategy {name!r}")


def apply_pruning(model: Module, groups: list[FilterGroup],
                  report: ImportanceReport,
                  strategy: PruningStrategy) -> SurgeryRecord:
    """Select victims with ``strategy`` and surgically remove them.

    Returns the surgery record; empty record (``num_removed == 0``) means
    the strategy found nothing to prune — the framework's termination
    signal.
    """
    sizes = group_sizes(model, groups)
    min_channels = {g.name: g.min_channels for g in groups}
    scores = {name: report.total[name] for name in report.total
              if name in sizes}
    for name, s in scores.items():
        if len(s) != sizes[name]:
            raise ValueError(
                f"group {name!r}: {len(s)} scores for {sizes[name]} filters "
                "(stale importance report?)")
    decision = strategy.select(scores, min_channels)
    if decision.is_empty():
        return SurgeryRecord()
    keep = {}
    for name, remove in decision.remove.items():
        keep[name] = np.setdiff1d(np.arange(sizes[name]), remove)
    return prune_groups(model, groups, keep)
