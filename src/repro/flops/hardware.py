"""Systolic-array execution cost model.

The paper's case for *structured* pruning is a hardware argument
(Sec. II-A): unstructured sparsity leaves a weight matrix that a systolic
array (e.g. the TPU's) still has to stream in full — "a lot of zero weight
values still need to be processed on hardware or additional hardware
overhead is required to skip such zero values" [26]. This module makes the
argument quantitative with a first-order cost model of a weight-stationary
systolic array:

* Convolutions and linear layers are lowered to GEMMs (the same im2col
  mapping the compute engine uses; conv of ``C_out`` filters over
  ``P`` output positions with ``K = C_in·k²`` becomes ``(P × K) · (K ×
  C_out)``).
* A GEMM of shape ``M×K×N`` on an ``R×C`` array is executed in weight
  tiles of ``R×C``; each tile costs ``M + R + C - 1`` cycles (stream M
  rows through the pipeline, plus fill and drain).
* **Structured** pruning shrinks ``K``/``N`` directly, so cycles drop
  with the channel count — no special hardware needed.
* **Unstructured** sparsity leaves ``K``/``N`` unchanged: cycles only
  drop when the array implements zero-skipping, modelled as compressing
  each tile's effective rows by the layer's weight sparsity at the price
  of a fixed per-tile overhead factor (index decoding, load imbalance).

The model is deliberately first-order (no memory hierarchy); it captures
exactly the effect the paper argues from, and the benchmark
``bench_hardware.py`` reproduces that argument end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..nn import Conv2d, Linear, Module
from ..tensor import Tensor, no_grad

__all__ = ["SystolicArrayConfig", "LayerCycles", "HardwareReport",
           "gemm_cycles", "estimate_cycles", "cycle_reduction"]


@dataclass(frozen=True)
class SystolicArrayConfig:
    """Weight-stationary systolic array parameters.

    Attributes
    ----------
    rows / cols:
        Physical PE grid; weights of a tile are pinned ``rows`` (reduction
        dimension) by ``cols`` (output dimension).
    frequency_mhz:
        Clock, for converting cycles to latency.
    zero_skipping:
        Whether the array can compress zero weights out of the reduction
        dimension (dedicated sparse hardware).
    skip_overhead:
        Fractional per-tile cost of zero-skipping (index handling, load
        imbalance); only applied when ``zero_skipping`` is on.
    """

    rows: int = 16
    cols: int = 16
    frequency_mhz: float = 200.0
    zero_skipping: bool = False
    skip_overhead: float = 0.15

    def __post_init__(self):
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if not 0 <= self.skip_overhead < 1:
            raise ValueError("skip_overhead must be in [0, 1)")


@dataclass(frozen=True)
class LayerCycles:
    """Cost of one layer on the array."""

    path: str
    layer_type: str
    m: int
    k: int
    n: int
    sparsity: float
    cycles: int


@dataclass
class HardwareReport:
    """Model-level execution estimate."""

    config: SystolicArrayConfig
    layers: list[LayerCycles] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(l.cycles for l in self.layers)

    @property
    def latency_ms(self) -> float:
        return self.total_cycles / (self.config.frequency_mhz * 1e3)

    def summary(self) -> str:
        lines = [f"{'layer':<26}{'GEMM (MxKxN)':<22}{'sparsity':>9}{'cycles':>12}"]
        for l in self.layers:
            lines.append(f"{l.path:<26}{f'{l.m}x{l.k}x{l.n}':<22}"
                         f"{l.sparsity:>8.1%}{l.cycles:>12,}")
        lines.append(f"{'TOTAL':<57}{self.total_cycles:>12,}")
        lines.append(f"latency @ {self.config.frequency_mhz:.0f} MHz: "
                     f"{self.latency_ms:.3f} ms")
        return "\n".join(lines)


def gemm_cycles(m: int, k: int, n: int, config: SystolicArrayConfig,
                sparsity: float = 0.0) -> int:
    """Cycles for an ``M×K @ K×N`` GEMM on the array.

    ``sparsity`` is the fraction of *zero weights* in the ``K×N`` operand.
    Without zero-skipping it is ignored (the hardware streams zeros like
    any other weight); with zero-skipping the reduction dimension of each
    tile compresses by the sparsity, plus the configured overhead.
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError("GEMM dimensions must be positive")
    if not 0 <= sparsity <= 1:
        raise ValueError("sparsity must be in [0, 1]")
    effective_k = k
    overhead = 1.0
    if config.zero_skipping and sparsity > 0:
        effective_k = max(int(math.ceil(k * (1.0 - sparsity))), 1)
        overhead = 1.0 + config.skip_overhead
    k_tiles = math.ceil(effective_k / config.rows)
    n_tiles = math.ceil(n / config.cols)
    per_tile = m + config.rows + config.cols - 1
    return int(math.ceil(k_tiles * n_tiles * per_tile * overhead))


def _weight_sparsity(module: Module) -> float:
    w = module.weight.data
    return float((w == 0).sum() / w.size)


def estimate_cycles(model: Module, input_shape: tuple[int, int, int],
                    config: SystolicArrayConfig | None = None) -> HardwareReport:
    """Estimate the systolic-array cost of one forward pass (batch 1).

    Sparsity per layer is read off the weights (exact zeros), so the same
    function covers dense, structurally pruned (smaller dims) and
    unstructured-masked (zeros in place) models.
    """
    config = config or SystolicArrayConfig()
    records: list[tuple[str, Module, tuple[int, ...]]] = []
    handles = []
    for path, module in model.named_modules():
        if not isinstance(module, (Conv2d, Linear)):
            continue

        def hook(mod, args, out, path=path):
            records.append((path, mod, tuple(out.shape)))

        handles.append(module.register_forward_hook(hook))
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(np.zeros((1,) + tuple(input_shape),
                                  dtype=np.float32)))
    finally:
        for h in handles:
            h.remove()
        model.train(was_training)

    report = HardwareReport(config=config)
    for path, module, out_shape in records:
        if isinstance(module, Conv2d):
            _, n, oh, ow = out_shape
            m = oh * ow
            k = module.in_channels * module.kernel_size ** 2
        else:
            m = 1
            k = module.in_features
            n = module.out_features
        sparsity = _weight_sparsity(module)
        cycles = gemm_cycles(m, k, n, config, sparsity=sparsity)
        report.layers.append(LayerCycles(
            path=path, layer_type=type(module).__name__, m=m, k=k, n=n,
            sparsity=sparsity, cycles=cycles))
    return report


def cycle_reduction(original: HardwareReport, pruned: HardwareReport) -> float:
    """Fraction of cycles removed, in ``[0, 1]``."""
    if original.total_cycles == 0:
        raise ValueError("original report has no cycles")
    return 1.0 - pruned.total_cycles / original.total_cycles
