"""Parameter and FLOP accounting.

Provides the two headline metrics of the paper's Table I:

* **pruning ratio** — fraction of weights removed, and
* **FLOPs reduction** — fraction of floating-point operations removed,

computed by profiling a model with shape-inference forward hooks. One MAC
is counted as two FLOPs (the convention the paper uses: ResNet-50's ~4.1 G
MACs are quoted as 8.2 G FLOPs in its introduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import (AvgPool2d, BatchNorm2d, Conv2d, Linear, MaxPool2d, Module,
                  ReLU)
from ..tensor import Tensor, no_grad

__all__ = ["LayerProfile", "ModelProfile", "profile_model",
           "pruning_ratio", "flops_reduction"]


@dataclass(frozen=True)
class LayerProfile:
    """Cost of a single layer for one forward pass at batch size 1."""

    path: str
    layer_type: str
    params: int
    macs: int
    flops: int
    output_shape: tuple[int, ...]


@dataclass
class ModelProfile:
    """Aggregate cost of a model; iterate :attr:`layers` for the breakdown."""

    layers: list[LayerProfile] = field(default_factory=list)

    @property
    def total_params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def total_flops(self) -> int:
        return sum(l.flops for l in self.layers)

    def by_type(self, layer_type: str) -> list[LayerProfile]:
        return [l for l in self.layers if l.layer_type == layer_type]

    def summary(self) -> str:
        """Human-readable per-layer table."""
        lines = [f"{'layer':<28}{'type':<14}{'params':>10}{'MACs':>12}{'out shape':>18}"]
        for l in self.layers:
            lines.append(f"{l.path:<28}{l.layer_type:<14}{l.params:>10}"
                         f"{l.macs:>12}{str(l.output_shape):>18}")
        lines.append(f"{'TOTAL':<42}{self.total_params:>10}{self.total_macs:>12}")
        return "\n".join(lines)


def _layer_cost(module: Module, out_shape: tuple[int, ...]) -> tuple[int, int]:
    """Return ``(params, macs)`` for one module given its output shape."""
    if isinstance(module, Conv2d):
        _, out_c, oh, ow = out_shape
        k2 = module.kernel_size ** 2
        macs = out_c * oh * ow * module.in_channels * k2
        params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        return params, macs
    if isinstance(module, Linear):
        macs = module.in_features * module.out_features
        params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        return params, macs
    if isinstance(module, BatchNorm2d):
        # Scale-and-shift per element; folded at inference in practice, but
        # counted so per-layer tables are complete.
        n_elem = int(np.prod(out_shape[1:]))
        return module.weight.size + module.bias.size, n_elem
    return 0, 0


def profile_model(model: Module, input_shape: tuple[int, int, int]) -> ModelProfile:
    """Profile a model with a dry forward pass at batch size 1.

    Parameters
    ----------
    model:
        Any module tree built from the layers in :mod:`repro.nn`.
    input_shape:
        ``(C, H, W)`` of a single input image.
    """
    records: list[tuple[str, Module, tuple[int, ...]]] = []
    handles = []
    counted = (Conv2d, Linear, BatchNorm2d, ReLU, MaxPool2d, AvgPool2d)
    for path, module in model.named_modules():
        if not isinstance(module, counted):
            continue

        def hook(mod, args, out, path=path):
            records.append((path, mod, tuple(out.shape)))

        handles.append(module.register_forward_hook(hook))
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32)))
    finally:
        for h in handles:
            h.remove()
        model.train(was_training)

    profile = ModelProfile()
    for path, module, out_shape in records:
        params, macs = _layer_cost(module, out_shape)
        if params == 0 and macs == 0:
            continue
        profile.layers.append(LayerProfile(
            path=path, layer_type=type(module).__name__, params=params,
            macs=macs, flops=2 * macs, output_shape=out_shape))
    return profile


def pruning_ratio(original: ModelProfile, pruned: ModelProfile) -> float:
    """Fraction of parameters removed, in ``[0, 1]`` (Table I column 4)."""
    if original.total_params == 0:
        raise ValueError("original model has no parameters")
    return 1.0 - pruned.total_params / original.total_params


def flops_reduction(original: ModelProfile, pruned: ModelProfile) -> float:
    """Fraction of FLOPs removed, in ``[0, 1]`` (Table I column 5)."""
    if original.total_flops == 0:
        raise ValueError("original model has no FLOPs")
    return 1.0 - pruned.total_flops / original.total_flops
