"""FLOPs / MACs / parameter accounting (Table I metrics) + hardware cost."""

from .counter import (LayerProfile, ModelProfile, flops_reduction,
                      profile_model, pruning_ratio)
from .hardware import (HardwareReport, LayerCycles, SystolicArrayConfig,
                       cycle_reduction, estimate_cycles, gemm_cycles)

__all__ = ["LayerProfile", "ModelProfile", "profile_model",
           "pruning_ratio", "flops_reduction",
           "SystolicArrayConfig", "LayerCycles", "HardwareReport",
           "gemm_cycles", "estimate_cycles", "cycle_reduction"]
