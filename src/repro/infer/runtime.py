"""Compiled inference runtime: preallocated buffers + a flat program.

The engine turns a (typically optimized) :class:`~repro.infer.plan.Plan`
into a list of kernel closures bound to a buffer arena. Every value in the
plan owns at most one buffer, allocated once at ``(max_batch, *tail)``
capacity; running a batch of ``n <= max_batch`` samples slices the leading
axis and performs no large allocations. Batches larger than the capacity
are processed in chunks transparently.

Entry point: :func:`compile_model`, which captures, optimizes, builds, and
(by default) validates the compiled engine against the eager model on the
example input before returning it.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..tensor import Tensor, no_grad
from .kernels import build_step
from .optimize import OptimizationReport, optimize_plan
from .plan import Plan, capture_plan

__all__ = ["BufferArena", "InferenceEngine", "CompileValidationError",
           "compile_model"]


class CompileValidationError(RuntimeError):
    """Compiled outputs diverged from eager outputs on the example input."""


class BufferArena:
    """Owns every preallocated array of one engine, keyed by value id.

    Buffers default to float32; quantized plans allocate int8 activation
    buffers and float64 accumulator scratch by passing ``dtype``. The
    first allocation of a value id fixes its dtype (the producing step
    allocates before any consumer looks it up).
    """

    def __init__(self):
        self._buffers: dict[int, np.ndarray] = {}
        self._scratch: dict[tuple[int, str], np.ndarray] = {}

    def buffer(self, vid: int, shape: tuple[int, ...],
               dtype=np.float32) -> np.ndarray:
        buf = self._buffers.get(vid)
        if buf is None:
            buf = np.zeros(shape, dtype=dtype)
            self._buffers[vid] = buf
        return buf

    def scratch(self, owner: int, name: str, shape: tuple[int, ...],
                zero: bool = False, dtype=np.float32) -> np.ndarray:
        key = (owner, name)
        buf = self._scratch.get(key)
        if buf is None:
            buf = (np.zeros if zero else np.empty)(shape, dtype=dtype)
            self._scratch[key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        return (sum(b.nbytes for b in self._buffers.values())
                + sum(b.nbytes for b in self._scratch.values()))

    def __len__(self) -> int:
        return len(self._buffers) + len(self._scratch)


class _BuildContext:
    """Per-step facade over the arena handed to kernel builders."""

    def __init__(self, engine: "InferenceEngine"):
        self._engine = engine
        self._step = None

    def _bind(self, step):
        self._step = step

    @property
    def im2col(self) -> str:
        return self._engine.im2col

    @property
    def max_batch(self) -> int:
        return self._engine.max_batch

    def shape(self, vid: int) -> tuple[int, ...]:
        return self._engine._capacity_shape(vid)

    def getter(self, vid: int):
        return self._engine._getter(vid)

    def out(self, vid: int) -> np.ndarray:
        dtype = self._step.params.get("out_dtype", "float32")
        return self._engine.arena.buffer(
            vid, self._engine._capacity_shape(vid), dtype=np.dtype(dtype))

    def alias(self, vid: int, fn) -> None:
        self._engine._aliases[vid] = fn

    def scratch(self, name: str, shape: tuple[int, ...],
                zero: bool = False, dtype=np.float32) -> np.ndarray:
        return self._engine.arena.scratch(self._step.output, name, shape,
                                          zero, dtype=dtype)


# Ops lowered by repro.qinfer.kernels; importing that module registers
# them. Lazy so the float path never pays for (or depends on) qinfer.
_QUANT_OPS = frozenset({
    "quantize", "dequantize", "qconv2d", "qlinear", "qmax_pool2d",
    "qrelu", "qadd", "qadd_relu", "qglobal_avg_pool",
})


def _ensure_quant_kernels(plan: Plan) -> bool:
    if any(step.op in _QUANT_OPS for step in plan.steps):
        from ..qinfer import kernels  # noqa: F401  registers Q_BUILDERS
        return True
    return False


class InferenceEngine:
    """Executable form of a plan: flat kernel program over a buffer arena."""

    def __init__(self, plan: Plan, max_batch: int | None = None,
                 im2col: str = "strided"):
        if im2col not in ("strided", "gather"):
            raise ValueError(f"im2col must be 'strided' or 'gather', "
                             f"got {im2col!r}")
        self.plan = plan
        self.max_batch = int(plan.example_batch if max_batch is None
                             else max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.im2col = im2col
        self.arena = BufferArena()
        self.optimization: OptimizationReport | None = None
        self._aliases: dict[int, callable] = {}
        self._program: list = []
        self.quantized = _ensure_quant_kernels(plan)

        ctx = _BuildContext(self)
        input_buf = self.arena.buffer(plan.input_id,
                                      self._capacity_shape(plan.input_id))
        for step in plan.steps:
            ctx._bind(step)
            run = build_step(step, ctx)
            if run is not None:
                self._program.append(run)
        self._input_buf = input_buf
        self._output = self._getter(plan.output_id)

    # -- value plumbing -------------------------------------------------

    def _capacity_shape(self, vid: int) -> tuple[int, ...]:
        if vid in self.plan.constants:
            return tuple(self.plan.shapes[vid])
        return (self.max_batch,) + tuple(self.plan.shapes[vid][1:])

    def _getter(self, vid: int):
        if vid in self.plan.constants:
            const = np.asarray(self.plan.constants[vid], dtype=np.float32)
            return lambda n: const
        alias = self._aliases.get(vid)
        if alias is not None:
            return alias
        buf = self.arena.buffer(vid, self._capacity_shape(vid))
        return lambda n: buf[:n]

    # -- execution ------------------------------------------------------

    def _run_chunk(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        np.copyto(self._input_buf[:n], x)
        for run in self._program:
            run(n)
        return self._output(n)

    def run(self, x) -> np.ndarray:
        """Execute the compiled network on a batch (or single sample).

        Accepts arrays or :class:`~repro.tensor.Tensor` inputs. A sample
        missing the batch axis is promoted to a batch of one and returned
        without it. Batches larger than ``max_batch`` are chunked.
        """
        if isinstance(x, Tensor):
            x = x.data
        x = np.asarray(x, dtype=np.float32)
        sample_shape = tuple(self.plan.shapes[self.plan.input_id][1:])
        single = x.shape == sample_shape
        if single:
            x = x[None]
        if x.shape[1:] != sample_shape:
            raise ValueError(
                f"input shape {x.shape} does not match compiled sample "
                f"shape {sample_shape} (leading batch axis excepted)")
        n = x.shape[0]
        if n <= self.max_batch:
            out = np.array(self._run_chunk(x), copy=True)
        else:
            out_tail = tuple(self.plan.shapes[self.plan.output_id][1:])
            out = np.empty((n,) + out_tail, dtype=np.float32)
            for lo in range(0, n, self.max_batch):
                hi = min(lo + self.max_batch, n)
                out[lo:hi] = self._run_chunk(x[lo:hi])
        return out[0] if single else out

    __call__ = run

    def run_observing(self, x, hooks: dict[int, callable]) -> np.ndarray:
        """Run a batch, then feed selected intermediate values to hooks.

        ``hooks`` maps value ids to callables receiving the value's array
        (a read-only slice of the arena buffer, valid until the next run).
        Works because every plan value owns its own buffer — nothing is
        overwritten within a chunk. Used by calibration to observe
        activation ranges without instrumenting kernels.
        """
        if isinstance(x, Tensor):
            x = x.data
        x = np.asarray(x, dtype=np.float32)
        if x.shape == tuple(self.plan.shapes[self.plan.input_id][1:]):
            x = x[None]
        getters = {vid: self._getter(vid) for vid in hooks}
        outs = []
        for lo in range(0, x.shape[0], self.max_batch):
            chunk = x[lo:lo + self.max_batch]
            n = chunk.shape[0]
            outs.append(np.array(self._run_chunk(chunk), copy=True))
            for vid, hook in hooks.items():
                hook(getters[vid](n))
        return outs[0] if len(outs) == 1 else np.concatenate(outs, axis=0)

    def describe(self) -> str:
        lines = [f"InferenceEngine: {len(self._program)} kernels, "
                 f"max_batch={self.max_batch}, im2col={self.im2col}, "
                 f"arena={len(self.arena)} buffers "
                 f"({self.arena.nbytes / 1e6:.2f} MB)"]
        if self.optimization is not None:
            lines.append(f"  optimization: {self.optimization.summary()}")
        lines.append(self.plan.summary())
        return "\n".join(lines)


def compile_model(model: Module, example_input, *, optimize: bool = True,
                  max_batch: int | None = None, im2col: str = "strided",
                  validate: bool = True, rtol: float = 1e-4,
                  atol: float = 1e-5, quantize: str | None = None,
                  calibrate=None, observer="percentile",
                  max_calibration_batches: int | None = None
                  ) -> InferenceEngine:
    """Capture, optimize, and build a compiled engine for ``model``.

    Parameters
    ----------
    model:
        Eval-mode :class:`~repro.nn.Module` built from traceable ops.
    example_input:
        Batched example defining the frozen sample shape.
    optimize:
        Run BatchNorm folding and ReLU fusion on the captured plan.
    max_batch:
        Buffer capacity (defaults to the example batch size). Larger
        inputs are chunked at runtime.
    im2col:
        Column-lowering strategy for conv kernels (``"strided"`` or
        ``"gather"``).
    validate:
        Compare compiled vs eager outputs on the example input and raise
        :class:`CompileValidationError` on mismatch. For quantized
        engines the check is different — and stricter: the engine must
        match the exact-arithmetic reference interpreter
        (:func:`repro.qinfer.reference.run_reference`) *bitwise*, since
        quantization error makes a float tolerance meaningless while the
        kernels' exactness certificate makes bit equality achievable.
    quantize:
        ``None`` (float engine) or ``"int8"`` — rewrite the optimized
        plan through :func:`repro.infer.optimize.quantize_plan` using
        activation scales calibrated from ``calibrate``.
    calibrate:
        Calibration loader (iterable of batches or ``(batch, label)``
        pairs); required when ``quantize`` is set.
    observer:
        Activation-range observer for calibration — ``"minmax"``,
        ``"percentile"``, an :class:`~repro.qinfer.observers.Observer`
        subclass, or an instance (see
        :func:`~repro.qinfer.observers.make_observer`).
    max_calibration_batches:
        Cap on calibration batches drawn from the loader (``None`` uses
        it all).
    """
    if quantize is not None and quantize != "int8":
        raise ValueError(f"quantize must be None or 'int8', got {quantize!r}")
    if quantize is not None and calibrate is None:
        raise ValueError("quantize='int8' requires a calibration loader "
                         "(calibrate=...)")
    if quantize is not None and not optimize:
        raise ValueError("quantize='int8' requires optimize=True "
                         "(BatchNorm must be folded before quantization)")
    plan = capture_plan(model, example_input)
    report = OptimizationReport(steps_before=len(plan.steps),
                                steps_after=len(plan.steps))
    if optimize:
        plan, report = optimize_plan(plan)

    if quantize is not None:
        from ..qinfer.calibrate import collect_scales
        from .optimize import quantize_plan
        scales = collect_scales(plan, calibrate, observer=observer,
                                max_batches=max_calibration_batches)
        plan, qreport = quantize_plan(plan, scales)
        report.steps_after = len(plan.steps)
        report.notes.append(qreport.summary())

    engine = InferenceEngine(plan, max_batch=max_batch, im2col=im2col)
    engine.optimization = report

    if validate:
        x = (example_input.data if isinstance(example_input, Tensor)
             else np.asarray(example_input, dtype=np.float32))
        if quantize is not None:
            from ..qinfer.reference import run_reference
            compiled = engine.run(x)
            reference = run_reference(plan, x)
            if compiled.dtype != reference.dtype or not np.array_equal(
                    compiled, reference):
                worst = float(np.max(np.abs(
                    compiled.astype(np.float64)
                    - reference.astype(np.float64))))
                raise CompileValidationError(
                    f"quantized engine diverges from the exact reference "
                    f"interpreter (max abs diff {worst:.3e}; bitwise "
                    f"equality is required by the exactness certificate)")
            return engine
        with no_grad():
            eager = model(Tensor(x)).data
        compiled = engine.run(x)
        if not np.allclose(compiled, eager, rtol=rtol, atol=atol):
            worst = float(np.max(np.abs(compiled - eager)))
            raise CompileValidationError(
                f"compiled output diverges from eager (max abs diff "
                f"{worst:.3e}, rtol={rtol}, atol={atol})")
    return engine
