"""Compiled inference engine: capture → optimize → preallocated runtime.

The eager autograd stack re-discovers network topology and allocates fresh
intermediates on every forward pass. For inference the topology is static,
so this package captures one forward pass into a :class:`~.plan.Plan`,
folds eval-mode BatchNorm into the preceding conv/linear weights, fuses
ReLU into its producers, and executes the result over a preallocated
buffer arena. :class:`~.batcher.BatchRunner` adds micro-batching for
single-sample request streams, and :mod:`~.bench` is the eager-vs-compiled
benchmark lane behind ``repro infer-bench``.

Typical use::

    from repro.infer import compile_model

    model.eval()
    engine = compile_model(model, example_batch)
    logits = engine.run(images)
"""

from .batcher import BatchRunner, InferenceTicket, TicketCancelled
from .optimize import OptimizationReport, fold_batchnorm, fuse_relu, optimize_plan
from .plan import Plan, PlanError, Step, capture_plan
from .runtime import (BufferArena, CompileValidationError, InferenceEngine,
                      compile_model)

__all__ = [
    "BatchRunner", "InferenceTicket", "TicketCancelled",
    "OptimizationReport", "fold_batchnorm", "fuse_relu", "optimize_plan",
    "Plan", "PlanError", "Step", "capture_plan",
    "BufferArena", "CompileValidationError", "InferenceEngine",
    "compile_model",
]
