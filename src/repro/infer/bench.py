"""Latency/throughput benchmark lane: eager vs compiled inference.

Benchmarks every configured model in dense form and after class-aware
channel pruning (random victims at a fixed fraction — the benchmark
measures execution speed, not accuracy), across a sweep of batch sizes.
Timing is median-of-repeats with a warmup pass, so one-off page faults and
lazy numpy initialisation do not pollute the numbers.

With ``quant=True`` (``repro infer-bench --quant``) the sweep covers the
full ``{dense, pruned} × {fp32, int8}`` grid: each variant is also
compiled through :mod:`repro.qinfer` (percentile calibration over a
synthetic loader), timed on the same batches, and annotated with its
serialized artifact size and top-1 agreement against eager execution —
the numbers behind the compression/throughput claims in
``docs/quantization.md``.

Entry point: :func:`run_bench`, used by both the ``repro infer-bench`` CLI
command and the standalone ``benchmarks/bench_infer.py`` script that
refreshes ``BENCH_infer.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

import numpy as np

from ..core.surgery import group_sizes, prune_groups
from ..models import build_model
from ..tensor import Tensor, no_grad
from .runtime import compile_model

__all__ = ["BENCH_MODELS", "SMOKE_MODELS", "run_bench", "write_bench",
           "format_table"]


# Sized so the full sweep stays under a couple of minutes on a laptop
# while batch-32 conv workloads are large enough to show the compiled
# engine's advantage.
BENCH_MODELS: dict[str, dict] = {
    "vgg11": dict(num_classes=10, image_size=16, width=0.25, seed=0),
    "resnet20": dict(num_classes=10, image_size=16, width=0.5, seed=0),
    "mlp": dict(num_classes=10, image_size=16, width=1.0, seed=0),
}

# CI smoke variant: tiny models, few repeats, still exercises every path.
SMOKE_MODELS: dict[str, dict] = {
    "vgg11": dict(num_classes=3, image_size=8, width=0.125, seed=0),
    "resnet20": dict(num_classes=3, image_size=8, width=0.25, seed=0),
    "mlp": dict(num_classes=3, image_size=8, width=0.125, seed=0),
}

_PRUNE_FRACTION = 0.5


def _median_ms(fn, repeats: int) -> float:
    fn()                                    # warmup
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return float(np.median(samples))


def _prune_model(model, seed: int) -> None:
    """Remove ~half of every prunable group's channels in place."""
    rng = np.random.default_rng(seed + 7)
    groups = model.prunable_groups()
    sizes = group_sizes(model, groups)
    keep = {}
    for group in groups:
        n = sizes[group.name]
        k = max(n - max(int(round(n * _PRUNE_FRACTION)), 1), 1)
        keep[group.name] = np.sort(rng.choice(n, size=k, replace=False))
    prune_groups(model, groups, keep)


def _artifact_bytes(plan) -> int:
    """On-disk size of a plan serialized with :func:`repro.qinfer.save_plan`."""
    from ..qinfer import save_plan

    fd, path = tempfile.mkstemp(suffix=".rplan")
    os.close(fd)
    try:
        save_plan(plan, path)
        return os.path.getsize(path)
    finally:
        os.unlink(path)


def _bench_variant(name: str, kwargs: dict, variant: str, batch_sizes,
                   repeats: int, rng, quant: bool = False) -> list[dict]:
    from ..verify.invariants import perturb_batchnorm_stats

    model = build_model(name, **kwargs)
    perturb_batchnorm_stats(model, seed=kwargs.get("seed", 0))
    if variant == "pruned":
        _prune_model(model, kwargs.get("seed", 0))
    model.eval()

    in_channels = kwargs.get("in_channels", 3)
    image_size = kwargs.get("image_size", 16)
    max_n = max(batch_sizes)
    example = rng.normal(size=(max_n, in_channels, image_size,
                               image_size)).astype(np.float32)
    # Bench models are wider/deeper than the verify cases, so BN-folding
    # float32 reordering noise can exceed the strict default atol; every
    # entry records its max_abs_diff, so validation here only needs to
    # catch real miscompiles.
    engine = compile_model(model, example, max_batch=max_n, atol=1e-3)

    engines = [("fp32", engine, None)]
    fp32_bytes = None
    if quant:
        loader = [rng.normal(size=example.shape).astype(np.float32)
                  for _ in range(3)]
        qengine = compile_model(model, example, max_batch=max_n,
                                quantize="int8", calibrate=loader)
        fp32_bytes = _artifact_bytes(engine.plan)
        engines.append(("int8", qengine, _artifact_bytes(qengine.plan)))

    entries = []
    for kind, eng, art_bytes in engines:
        for batch in batch_sizes:
            x = example[:batch]
            xt = Tensor(x)

            def eager():
                with no_grad():
                    return model(xt).data

            eager_out = eager()
            compiled_out = eng.run(x)
            max_diff = float(np.max(np.abs(eager_out - compiled_out)))

            eager_ms = _median_ms(eager, repeats)
            compiled_ms = _median_ms(lambda: eng.run(x), repeats)
            entry = dict(
                model=name, variant=variant, engine=kind, batch=int(batch),
                eager_ms=round(eager_ms, 4),
                compiled_ms=round(compiled_ms, 4),
                speedup=round(eager_ms / compiled_ms, 3)
                if compiled_ms else None,
                eager_throughput=round(batch / (eager_ms / 1e3), 1),
                compiled_throughput=round(batch / (compiled_ms / 1e3), 1),
                max_abs_diff=max_diff,
                plan_steps=len(eng.plan),
                optimization=eng.optimization.summary()
                if eng.optimization else None,
            )
            if quant:
                entry["artifact_bytes"] = int(art_bytes if kind == "int8"
                                              else fp32_bytes)
                if kind == "int8":
                    entry["size_ratio"] = round(fp32_bytes / art_bytes, 3)
                    entry["top1_agreement"] = round(float(np.mean(
                        np.argmax(compiled_out, -1)
                        == np.argmax(eager_out, -1))), 4)
            entries.append(entry)
    return entries


def run_bench(models: dict[str, dict] | None = None,
              batch_sizes=(1, 8, 32), repeats: int = 10,
              smoke: bool = False, seed: int = 0,
              quant: bool = False) -> dict:
    """Benchmark eager vs compiled inference; returns the results payload.

    ``quant=True`` extends the sweep to the int8 engine, producing the
    ``{dense, pruned} × {fp32, int8}`` grid with artifact sizes and top-1
    agreement per int8 entry.
    """
    if models is None:
        models = SMOKE_MODELS if smoke else BENCH_MODELS
    if smoke:
        batch_sizes = tuple(b for b in batch_sizes if b <= 8) or (1, 8)
        repeats = min(repeats, 3)
    rng = np.random.default_rng(seed)
    entries = []
    for name, kwargs in models.items():
        for variant in ("dense", "pruned"):
            entries.extend(_bench_variant(name, kwargs, variant,
                                          tuple(batch_sizes), repeats, rng,
                                          quant=quant))
    if smoke and quant:
        # CI tripwire: the quantization contract (artifact shrinkage and
        # accuracy agreement) must hold at every grid point.
        for e in entries:
            if e.get("engine") != "int8":
                continue
            where = f"{e['model']}/{e['variant']}@{e['batch']}"
            # The smoke mlp is small enough that the fixed manifest
            # bytes keep it a hair under 3x; conv models must clear it.
            gate = 3.0 if e["model"] != "mlp" else 2.8
            assert e["size_ratio"] >= gate, \
                f"{where}: artifact only shrank {e['size_ratio']}x"
            assert e["top1_agreement"] >= 0.9, \
                f"{where}: top-1 agreement {e['top1_agreement']}"
    return {
        "benchmark": "repro.infer eager-vs-compiled",
        "smoke": bool(smoke),
        "quantization": bool(quant),
        "repeats": int(repeats),
        "batch_sizes": [int(b) for b in batch_sizes],
        "prune_fraction": _PRUNE_FRACTION,
        "numpy": np.__version__,
        "entries": entries,
    }


def write_bench(results: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")


def format_table(results: dict) -> str:
    quant = results.get("quantization")
    header = (f"{'model':<10} {'variant':<7} {'engine':<6} {'batch':>5} "
              f"{'eager ms':>9} {'compiled ms':>12} {'speedup':>8} "
              f"{'max|Δ|':>9}")
    if quant:
        header += f" {'bytes':>9} {'ratio':>6} {'top1':>5}"
    lines = [header, "-" * len(header)]
    for e in results["entries"]:
        row = (f"{e['model']:<10} {e['variant']:<7} "
               f"{e.get('engine', 'fp32'):<6} {e['batch']:>5} "
               f"{e['eager_ms']:>9.3f} {e['compiled_ms']:>12.3f} "
               f"{e['speedup']:>7.2f}x {e['max_abs_diff']:>9.2e}")
        if quant:
            ratio = (f"{e['size_ratio']:.2f}" if "size_ratio" in e else "-")
            top1 = (f"{e['top1_agreement']:.2f}"
                    if "top1_agreement" in e else "-")
            row += f" {e.get('artifact_bytes', 0):>9} {ratio:>6} {top1:>5}"
        lines.append(row)
    return "\n".join(lines)
