"""Plan-level optimization passes: BatchNorm folding and ReLU fusion.

Both passes are peephole rewrites over the SSA step list of a
:class:`~repro.infer.plan.Plan`:

* **BatchNorm folding** — an eval-mode BatchNorm is the affine map
  ``y = x * s + t`` with ``s = gamma / sqrt(var + eps)`` and
  ``t = beta - mean * s``. When its sole producer is a Conv2d or Linear
  step consumed by nothing else, the affine map folds into that step's
  weights (``W' = W * s`` per output channel, ``b' = (b - mean) * s +
  beta``) and the BatchNorm step disappears.

* **ReLU fusion** — a ReLU whose input has fan-out 1 merges into its
  producer (``conv2d`` → ``conv2d_relu``, ``linear`` → ``linear_relu``,
  ``add`` → ``add_relu``, ``batchnorm`` → ``batchnorm_relu``), so the
  runtime applies the clamp in place on the producer's output buffer
  instead of launching a separate pass over the activation.

Passes never mutate the input plan; they rebuild the step list with fresh
``Step`` objects and remap downstream references to dropped values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .plan import Plan, Step

__all__ = ["OptimizationReport", "fold_batchnorm", "fuse_relu",
           "optimize_plan"]


@dataclass
class OptimizationReport:
    """What the optimizer did to a plan."""

    folded_batchnorm: int = 0
    fused_relu: int = 0
    steps_before: int = 0
    steps_after: int = 0
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.steps_before} -> {self.steps_after} steps "
                f"({self.folded_batchnorm} BN folded, "
                f"{self.fused_relu} ReLU fused)")


def _rebuild(plan: Plan, rewrite) -> tuple[Plan, int]:
    """Shared pass skeleton.

    ``rewrite(step, inputs, by_id, counts)`` returns either the id of an
    existing value that replaces this step's output (step dropped), or
    ``None`` to keep the step. ``by_id`` maps value id -> already-emitted
    new Step, which the rewrite may mutate (fold weights, change op).
    """
    counts = plan.use_counts()
    remap: dict[int, int] = {}
    by_id: dict[int, Step] = {}
    new_steps: list[Step] = []
    dropped = 0
    for step in plan.steps:
        inputs = tuple(remap.get(i, i) for i in step.inputs)
        replacement = rewrite(step, inputs, by_id, counts)
        if replacement is not None:
            remap[step.output] = replacement
            dropped += 1
            continue
        new_step = Step(step.op, inputs, step.output, dict(step.params),
                        step.source)
        new_steps.append(new_step)
        by_id[new_step.output] = new_step
    new_plan = plan.replace(
        steps=new_steps,
        output_id=remap.get(plan.output_id, plan.output_id))
    return new_plan, dropped


def fold_batchnorm(plan: Plan) -> tuple[Plan, int]:
    """Fold eval-mode BatchNorm steps into their producing conv/linear."""

    def rewrite(step, inputs, by_id, counts):
        if step.op != "batchnorm":
            return None
        producer = by_id.get(inputs[0])
        if producer is None or producer.op not in ("conv2d", "linear"):
            return None
        if counts.get(producer.output, 0) != 1:
            return None  # someone else reads the pre-BN activation
        p = step.params
        scale = (p["gamma"] / np.sqrt(p["var"] + p["eps"])).astype(np.float32)
        weight = producer.params["weight"]
        shape = (-1,) + (1,) * (weight.ndim - 1)
        bias = producer.params.get("bias")
        if bias is None:
            bias = np.zeros(weight.shape[0], dtype=np.float32)
        producer.params = dict(
            producer.params,
            weight=(weight * scale.reshape(shape)).astype(np.float32),
            bias=((bias - p["mean"]) * scale + p["beta"]).astype(np.float32))
        producer.source = f"{producer.source}+{step.source}".strip("+")
        return producer.output

    return _rebuild(plan, rewrite)


_FUSABLE = {"conv2d": "conv2d_relu", "linear": "linear_relu",
            "add": "add_relu", "batchnorm": "batchnorm_relu"}


def fuse_relu(plan: Plan) -> tuple[Plan, int]:
    """Merge fan-out-1 ReLU steps into their producers."""

    def rewrite(step, inputs, by_id, counts):
        if step.op != "relu":
            return None
        producer = by_id.get(inputs[0])
        if producer is None or producer.op not in _FUSABLE:
            return None
        if counts.get(producer.output, 0) != 1:
            return None  # the pre-activation value is read elsewhere
        producer.op = _FUSABLE[producer.op]
        return producer.output

    return _rebuild(plan, rewrite)


def optimize_plan(plan: Plan, fold_bn: bool = True,
                  fuse: bool = True) -> tuple[Plan, OptimizationReport]:
    """Run the optimization pipeline; returns the new plan and a report."""
    report = OptimizationReport(steps_before=len(plan.steps))
    if fold_bn:
        plan, report.folded_batchnorm = fold_batchnorm(plan)
    if fuse:
        plan, report.fused_relu = fuse_relu(plan)
    report.steps_after = len(plan.steps)
    remaining = plan.op_counts().get("batchnorm", 0)
    if fold_bn and remaining:
        report.notes.append(
            f"{remaining} batchnorm steps kept (producer not conv/linear "
            "or pre-BN activation has fan-out > 1)")
    return plan, report
