"""Plan-level optimization passes: BatchNorm folding and ReLU fusion.

Both passes are peephole rewrites over the SSA step list of a
:class:`~repro.infer.plan.Plan`:

* **BatchNorm folding** — an eval-mode BatchNorm is the affine map
  ``y = x * s + t`` with ``s = gamma / sqrt(var + eps)`` and
  ``t = beta - mean * s``. When its sole producer is a Conv2d or Linear
  step consumed by nothing else, the affine map folds into that step's
  weights (``W' = W * s`` per output channel, ``b' = (b - mean) * s +
  beta``) and the BatchNorm step disappears.

* **ReLU fusion** — a ReLU whose input has fan-out 1 merges into its
  producer (``conv2d`` → ``conv2d_relu``, ``linear`` → ``linear_relu``,
  ``add`` → ``add_relu``, ``batchnorm`` → ``batchnorm_relu``), so the
  runtime applies the clamp in place on the producer's output buffer
  instead of launching a separate pass over the activation.

Passes never mutate the input plan; they rebuild the step list with fresh
``Step`` objects and remap downstream references to dropped values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .plan import Plan, Step

__all__ = ["OptimizationReport", "fold_batchnorm", "fuse_relu",
           "optimize_plan", "QuantizeReport", "quantize_plan"]


@dataclass
class OptimizationReport:
    """What the optimizer did to a plan."""

    folded_batchnorm: int = 0
    fused_relu: int = 0
    steps_before: int = 0
    steps_after: int = 0
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.steps_before} -> {self.steps_after} steps "
                f"({self.folded_batchnorm} BN folded, "
                f"{self.fused_relu} ReLU fused)")


def _rebuild(plan: Plan, rewrite) -> tuple[Plan, int]:
    """Shared pass skeleton.

    ``rewrite(step, inputs, by_id, counts)`` returns either the id of an
    existing value that replaces this step's output (step dropped), or
    ``None`` to keep the step. ``by_id`` maps value id -> already-emitted
    new Step, which the rewrite may mutate (fold weights, change op).
    """
    counts = plan.use_counts()
    remap: dict[int, int] = {}
    by_id: dict[int, Step] = {}
    new_steps: list[Step] = []
    dropped = 0
    for step in plan.steps:
        inputs = tuple(remap.get(i, i) for i in step.inputs)
        replacement = rewrite(step, inputs, by_id, counts)
        if replacement is not None:
            remap[step.output] = replacement
            dropped += 1
            continue
        new_step = Step(step.op, inputs, step.output, dict(step.params),
                        step.source)
        new_steps.append(new_step)
        by_id[new_step.output] = new_step
    new_plan = plan.replace(
        steps=new_steps,
        output_id=remap.get(plan.output_id, plan.output_id))
    return new_plan, dropped


def fold_batchnorm(plan: Plan) -> tuple[Plan, int]:
    """Fold eval-mode BatchNorm steps into their producing conv/linear."""

    def rewrite(step, inputs, by_id, counts):
        if step.op != "batchnorm":
            return None
        producer = by_id.get(inputs[0])
        if producer is None or producer.op not in ("conv2d", "linear"):
            return None
        if counts.get(producer.output, 0) != 1:
            return None  # someone else reads the pre-BN activation
        p = step.params
        scale = (p["gamma"] / np.sqrt(p["var"] + p["eps"])).astype(np.float32)
        weight = producer.params["weight"]
        shape = (-1,) + (1,) * (weight.ndim - 1)
        bias = producer.params.get("bias")
        if bias is None:
            bias = np.zeros(weight.shape[0], dtype=np.float32)
        producer.params = dict(
            producer.params,
            weight=(weight * scale.reshape(shape)).astype(np.float32),
            bias=((bias - p["mean"]) * scale + p["beta"]).astype(np.float32))
        producer.source = f"{producer.source}+{step.source}".strip("+")
        return producer.output

    return _rebuild(plan, rewrite)


_FUSABLE = {"conv2d": "conv2d_relu", "linear": "linear_relu",
            "add": "add_relu", "batchnorm": "batchnorm_relu"}


def fuse_relu(plan: Plan) -> tuple[Plan, int]:
    """Merge fan-out-1 ReLU steps into their producers."""

    def rewrite(step, inputs, by_id, counts):
        if step.op != "relu":
            return None
        producer = by_id.get(inputs[0])
        if producer is None or producer.op not in _FUSABLE:
            return None
        if counts.get(producer.output, 0) != 1:
            return None  # the pre-activation value is read elsewhere
        producer.op = _FUSABLE[producer.op]
        return producer.output

    return _rebuild(plan, rewrite)


# ----------------------------------------------------------------------
# Int8 quantization rewrite (repro.qinfer)
# ----------------------------------------------------------------------

@dataclass
class QuantizeReport:
    """What :func:`quantize_plan` rewrote, and what it left in float."""

    quantized_conv: int = 0
    quantized_linear: int = 0
    kept_float: list[str] = field(default_factory=list)
    boundary_steps: int = 0
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (f"int8: {self.quantized_conv} conv + "
                f"{self.quantized_linear} linear quantized, "
                f"{len(self.kept_float)} kept float, "
                f"{self.boundary_steps} quantize/dequantize boundaries")


# Shape heuristic for which layers run int8. Tiny-channel convs lose to
# float32 BLAS because the int8->float32 im2col cast dominates the (small)
# GEMM; measured on this runtime, the break-even is C_in >= 16 generally,
# or C_in >= 8 once the spatial size has dropped to <= 8 (smaller cast,
# relatively larger GEMM). The first conv (C_in = 3) is never quantized,
# which also matches standard deployment practice of keeping the stem in
# higher precision.
def _conv_worth_quantizing(c_in: int, h_in: int) -> bool:
    return c_in >= 16 or (c_in >= 8 and h_in <= 8)


_MIN_LINEAR_FEATURES = 32

_QCONV_OPS = {"conv2d": False, "conv2d_relu": True}
_QLINEAR_OPS = {"linear": False, "linear_relu": True}


def _nhwc(shape: tuple[int, ...]) -> tuple[int, ...]:
    if len(shape) == 4:
        n, c, h, w = shape
        return (n, h, w, c)
    return tuple(shape)


def quantize_plan(plan: Plan, scales: dict[int, float],
                  ) -> tuple[Plan, QuantizeReport]:
    """Rewrite conv/linear steps of an optimized float plan into int8 ops.

    ``scales`` maps value ids of the float plan to per-tensor activation
    quantization scales (from :func:`repro.qinfer.calibrate.collect_scales`).
    The rewrite assigns each value a domain: a step runs quantized when
    its inputs can be codes and the shape heuristic says int8 wins;
    ``quantize``/``dequantize`` boundary steps are inserted only where
    the domain actually changes. Quantized 4-D activations live in NHWC
    (``plan.shapes`` records the permuted shape) so the int8 conv GEMM
    output is directly the next conv's input layout. Monotone ops
    (max-pool, ReLU) pass codes through at unchanged scale; residual adds
    requantize onto the output grid; global average pooling consumes
    codes and emits float32.

    BatchNorm must already be folded (run :func:`optimize_plan` first) —
    a remaining ``batchnorm`` step simply stays in float here, costing a
    dequantize boundary.
    """
    report = QuantizeReport()
    shapes = dict(plan.shapes)
    # Codes pass through max-pool/ReLU unchanged, so those outputs MUST
    # carry their input's scale — an independently observed (smaller)
    # range would silently re-interpret the codes on a different grid.
    scales = dict(scales)
    for step in plan.steps:
        if step.op in ("max_pool2d", "relu") and step.inputs[0] in scales:
            scales[step.output] = scales[step.inputs[0]]
    consumers: dict[int, list[Step]] = {}
    for step in plan.steps:
        for vid in step.inputs:
            consumers.setdefault(vid, []).append(step)

    # Pass 1: which conv/linear steps run int8 (keyed by output vid).
    quant: set[int] = set()
    for step in plan.steps:
        in_vid = step.inputs[0] if step.inputs else None
        if step.op in _QCONV_OPS:
            c_in, h_in = shapes[in_vid][1], shapes[in_vid][2]
            if _conv_worth_quantizing(c_in, h_in) and in_vid in scales:
                quant.add(step.output)
            else:
                report.kept_float.append(step.describe())
        elif step.op in _QLINEAR_OPS:
            if shapes[in_vid][1] >= _MIN_LINEAR_FEATURES and in_vid in scales:
                quant.add(step.output)
            else:
                report.kept_float.append(step.describe())

    # Pass 2 (forward): which values *can* exist as int8 codes.
    capable: dict[int, bool] = {}
    for step in plan.steps:
        out = step.output
        if step.op in _QCONV_OPS or step.op in _QLINEAR_OPS:
            capable[out] = out in quant and out in scales
        elif step.op in ("max_pool2d", "relu"):
            capable[out] = capable.get(step.inputs[0], False)
        elif step.op in ("add", "add_relu"):
            capable[out] = (capable.get(step.inputs[0], False)
                            and capable.get(step.inputs[1], False)
                            and out in scales)
        else:
            capable[out] = False

    # Pass 3 (reverse, memoized): should the producer emit codes? Only
    # when *every* consumer reads codes — with mixed consumers the value
    # is emitted float and code-consumers requantize it themselves.
    want_q8: dict[int, bool] = {}

    def _wants(vid: int) -> bool:
        cached = want_q8.get(vid)
        if cached is not None:
            return cached
        want_q8[vid] = False            # break cycles conservatively
        ok = capable.get(vid, False) and vid != plan.output_id
        if ok:
            users = consumers.get(vid, [])
            ok = bool(users)
            for user in users:
                if user.op in _QCONV_OPS or user.op in _QLINEAR_OPS:
                    ok = ok and user.output in quant
                elif user.op in ("max_pool2d", "relu"):
                    ok = ok and _wants(user.output)
                elif user.op == "global_avg_pool":
                    pass
                elif user.op in ("add", "add_relu"):
                    ok = ok and capable.get(user.output, False)
                else:
                    ok = False
                if not ok:
                    break
        want_q8[vid] = ok
        return ok

    # Pass 4: emission.
    next_vid = max(shapes) + 1
    new_steps: list[Step] = []
    q8_of: dict[int, int] = {}
    f32_avail = {plan.input_id} | set(plan.constants)

    def fresh() -> int:
        nonlocal next_vid
        next_vid += 1
        return next_vid - 1

    def ensure_q8(vid: int) -> int:
        qv = q8_of.get(vid)
        if qv is None:
            qv = fresh()
            new_steps.append(Step("quantize", (vid,), qv,
                                  {"scale": float(scales[vid]),
                                   "out_dtype": "int8"}, "qinfer"))
            shapes[qv] = _nhwc(shapes[vid])
            q8_of[vid] = qv
            report.boundary_steps += 1
        return qv

    def ensure_f32(vid: int) -> int:
        if vid not in f32_avail:
            new_steps.append(Step("dequantize", (q8_of[vid],), vid,
                                  {"scale": float(scales[vid])}, "qinfer"))
            f32_avail.add(vid)
            report.boundary_steps += 1
        return vid

    from ..quant.quantize import quantize_array

    for step in plan.steps:
        op, out = step.op, step.output
        if out in quant:
            relu = op.endswith("_relu")
            in_vid = step.inputs[0]
            emit_q8 = _wants(out)
            qin = ensure_q8(in_vid)
            wq, w_scale = quantize_array(step.params["weight"], 8,
                                         per_channel=True)
            params = {"weight_q": wq.astype(np.int8),
                      "w_scale": w_scale.reshape(-1),
                      "bias": step.params.get("bias"),
                      "in_scale": float(scales[in_vid]),
                      "relu": relu,
                      "emit": "q8" if emit_q8 else "f32"}
            if op in _QCONV_OPS:
                qop = "qconv2d"
                params["stride"] = step.params["stride"]
                params["padding"] = step.params["padding"]
                report.quantized_conv += 1
            else:
                qop = "qlinear"
                report.quantized_linear += 1
            if emit_q8:
                qout = fresh()
                params["out_scale"] = float(scales[out])
                params["out_dtype"] = "int8"
                shapes[qout] = _nhwc(shapes[out])
                q8_of[out] = qout
            else:
                qout = out
                f32_avail.add(out)
            new_steps.append(Step(qop, (qin,), qout, params, step.source))
        elif (op in ("max_pool2d", "relu")
              and step.inputs[0] in q8_of and _wants(out)):
            qout = fresh()
            if op == "max_pool2d":
                params = {"kernel": step.params["kernel"],
                          "stride": step.params["stride"],
                          "out_dtype": "int8"}
                qop = "qmax_pool2d"
            else:
                params = {"out_dtype": "int8"}
                qop = "qrelu"
            shapes[qout] = _nhwc(shapes[out])
            q8_of[out] = qout
            new_steps.append(
                Step(qop, (q8_of[step.inputs[0]],), qout, params,
                     step.source))
        elif (op in ("add", "add_relu")
              and all(v in q8_of for v in step.inputs)
              and capable.get(out, False)):
            a, b = step.inputs
            emit_q8 = _wants(out)
            params = {"a_scale": float(scales[a]),
                      "b_scale": float(scales[b]),
                      "emit": "q8" if emit_q8 else "f32"}
            if emit_q8:
                qout = fresh()
                params["out_scale"] = float(scales[out])
                params["out_dtype"] = "int8"
                shapes[qout] = _nhwc(shapes[out])
                q8_of[out] = qout
            else:
                qout = out
                f32_avail.add(out)
            new_steps.append(
                Step("qadd_relu" if op == "add_relu" else "qadd",
                     (q8_of[a], q8_of[b]), qout, params, step.source))
        elif op == "global_avg_pool" and step.inputs[0] in q8_of:
            in_vid = step.inputs[0]
            new_steps.append(
                Step("qglobal_avg_pool", (q8_of[in_vid],), out,
                     {"scale": float(scales[in_vid])}, step.source))
            f32_avail.add(out)
        else:
            inputs = tuple(
                ensure_f32(v) if v in q8_of and v not in f32_avail else v
                for v in step.inputs)
            params = dict(step.params)
            if op in _QCONV_OPS or op in _QLINEAR_OPS:
                # Weight-only quantization for layers kept in float:
                # executes at full float32 speed (codes are dequantized
                # once into the GEMM matrix at engine build), but the
                # artifact stores one byte per weight like every other
                # layer. Error is the per-channel int8 weight grid only.
                wq, w_scale = quantize_array(params.pop("weight"), 8,
                                             per_channel=True)
                params["weight_q"] = wq.astype(np.int8)
                params["w_scale"] = w_scale
            new_steps.append(Step(op, inputs, out, params, step.source))
            f32_avail.add(out)

    if plan.output_id not in f32_avail:
        ensure_f32(plan.output_id)
    if not (report.quantized_conv or report.quantized_linear):
        report.notes.append(
            "no layer met the int8 shape heuristic; plan left in float")
    new_plan = plan.replace(steps=new_steps, shapes=shapes)
    return new_plan, report


def optimize_plan(plan: Plan, fold_bn: bool = True,
                  fuse: bool = True) -> tuple[Plan, OptimizationReport]:
    """Run the optimization pipeline; returns the new plan and a report."""
    report = OptimizationReport(steps_before=len(plan.steps))
    if fold_bn:
        plan, report.folded_batchnorm = fold_batchnorm(plan)
    if fuse:
        plan, report.fused_relu = fuse_relu(plan)
    report.steps_after = len(plan.steps)
    remaining = plan.op_counts().get("batchnorm", 0)
    if fold_bn and remaining:
        report.notes.append(
            f"{remaining} batchnorm steps kept (producer not conv/linear "
            "or pre-BN activation has fan-out > 1)")
    return plan, report
