"""Kernel builders: compile plan steps into zero-allocation closures.

Each builder receives a :class:`~repro.infer.plan.Step` plus a build
context and returns ``run(n)`` — a closure that reads its input buffers,
computes the step for the first ``n`` rows, and writes the step's output
buffer in place. All large arrays (activations, im2col column matrices,
padded-image scratch) are preallocated at engine build time at the
engine's batch capacity; a steady-state ``run`` performs no large
allocations. View-only ops (``flatten``, ``reshape``) return ``None`` and
register an alias instead of a buffer, so they cost nothing at runtime.

The context object (``ctx``) provides:

``getter(vid)``
    ``callable(n)`` producing the value — a ``buf[:n]`` slice for batched
    values, the raw array for baked constants, or a registered alias view.
``out(vid)`` / ``alias(vid, fn)``
    Allocate the output buffer for a value, or register it as a view.
``scratch(name, shape, zero=False)``
    Named preallocated scratch array owned by this step.
``shape(vid)``
    Capacity shape (batch axis already rescaled to ``max_batch``).
``im2col``
    ``"strided"`` (pad + as_strided + copy, the default — fastest) or
    ``"gather"`` (cached index table via
    :func:`repro.tensor.conv.im2col_gather`).

Closures never use augmented assignment on closed-over buffers (``buf +=
x`` rebinds locally); they call the ufunc with ``out=`` instead.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..tensor.conv import im2col_gather

__all__ = ["BUILDERS", "build_step", "register_builders"]


def _maybe_relu(buf, n):
    np.maximum(buf[:n], 0.0, out=buf[:n])


def _layer_weight(params) -> np.ndarray:
    """Float weight of a conv/linear step.

    Weight-only-quantized steps (float execution, int8 storage — see
    :func:`repro.infer.optimize.quantize_plan`) carry ``weight_q`` +
    ``w_scale`` instead of ``weight``; dequantization happens here, once,
    at engine build time.
    """
    w = params.get("weight")
    if w is None:
        w = (np.asarray(params["weight_q"], dtype=np.float32)
             * np.asarray(params["w_scale"], dtype=np.float32))
    return w


# ----------------------------------------------------------------------
# Convolution and linear layers
# ----------------------------------------------------------------------

def _build_conv2d(step, ctx, relu=False):
    p = step.params
    w = np.ascontiguousarray(_layer_weight(p), dtype=np.float32)
    o, c, kh, kw = w.shape
    stride, padding = int(p["stride"]), int(p["padding"])
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)
    nb = out.shape[0]
    oh, ow = out.shape[2], out.shape[3]
    h, w_in = ctx.shape(step.inputs[0])[2:]
    w2d = w.reshape(o, -1)
    bias = p.get("bias")
    bcol = (None if bias is None
            else np.ascontiguousarray(bias, dtype=np.float32).reshape(o, 1))
    span = oh * ow
    out3 = out.reshape(nb, o, span)
    cols = ctx.scratch("cols", (nb, c * kh * kw, span))

    if ctx.im2col == "gather":
        def run(n):
            im2col_gather(get(n), kh, kw, stride, padding, out=cols[:n])
            np.matmul(w2d, cols[:n], out=out3[:n])
            if bcol is not None:
                np.add(out3[:n], bcol, out=out3[:n])
            if relu:
                _maybe_relu(out3, n)
        return run

    cols6 = cols.reshape(nb, c, kh, kw, oh, ow)
    padbuf = (ctx.scratch("pad", (nb, c, h + 2 * padding, w_in + 2 * padding),
                          zero=True)
              if padding > 0 else None)

    def run(n):
        x = get(n)
        if padbuf is not None:
            padbuf[:n, :, padding:padding + h, padding:padding + w_in] = x
            src = padbuf[:n]
        else:
            src = np.ascontiguousarray(x)
        sn, sc, sh, sw = src.strides
        patches = as_strided(
            src, shape=(n, c, kh, kw, oh, ow),
            strides=(sn, sc, sh, sw, sh * stride, sw * stride),
            writeable=False)
        np.copyto(cols6[:n], patches)
        np.matmul(w2d, cols[:n], out=out3[:n])
        if bcol is not None:
            np.add(out3[:n], bcol, out=out3[:n])
        if relu:
            _maybe_relu(out3, n)

    return run


def _build_linear(step, ctx, relu=False):
    p = step.params
    wt = np.ascontiguousarray(
        np.asarray(_layer_weight(p), dtype=np.float32).T)  # (in, out)
    bias = p.get("bias")
    b = None if bias is None else np.asarray(bias, dtype=np.float32)
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)

    def run(n):
        np.matmul(get(n), wt, out=out[:n])
        if b is not None:
            np.add(out[:n], b, out=out[:n])
        if relu:
            _maybe_relu(out, n)

    return run


def _build_batchnorm(step, ctx, relu=False):
    p = step.params
    scale = (np.asarray(p["gamma"], dtype=np.float64)
             / np.sqrt(np.asarray(p["var"], dtype=np.float64) + p["eps"]))
    shift = np.asarray(p["beta"], dtype=np.float64) - p["mean"] * scale
    scale = scale.astype(np.float32).reshape(1, -1, 1, 1)
    shift = shift.astype(np.float32).reshape(1, -1, 1, 1)
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)

    def run(n):
        np.multiply(get(n), scale, out=out[:n])
        np.add(out[:n], shift, out=out[:n])
        if relu:
            _maybe_relu(out, n)

    return run


# ----------------------------------------------------------------------
# Elementwise ops
# ----------------------------------------------------------------------

def _build_binary(ufunc, relu=False):
    def build(step, ctx):
        ga = ctx.getter(step.inputs[0])
        gb = ctx.getter(step.inputs[1])
        out = ctx.out(step.output)

        def run(n):
            ufunc(ga(n), gb(n), out=out[:n])
            if relu:
                _maybe_relu(out, n)

        return run
    return build


def _build_unary(ufunc):
    def build(step, ctx):
        get = ctx.getter(step.inputs[0])
        out = ctx.out(step.output)

        def run(n):
            ufunc(get(n), out=out[:n])

        return run
    return build


def _build_relu(step, ctx):
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)

    def run(n):
        np.maximum(get(n), 0.0, out=out[:n])

    return run


def _build_sigmoid(step, ctx):
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)

    def run(n):
        np.negative(get(n), out=out[:n])
        np.exp(out[:n], out=out[:n])
        np.add(out[:n], 1.0, out=out[:n])
        np.reciprocal(out[:n], out=out[:n])

    return run


def _build_clip(step, ctx):
    low, high = step.params["low"], step.params["high"]
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)

    def run(n):
        np.clip(get(n), low, high, out=out[:n])

    return run


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------

def _build_pool(combine, scale_by_area):
    """Pooling as k² elementwise combines over strided window slices.

    An order of magnitude faster than reducing an as_strided 6-D window
    view: each combine is a flat ufunc over contiguousish slices instead
    of a generic multi-axis reduction with tiny inner strides.
    """
    def build(step, ctx):
        kernel = int(step.params["kernel"])
        stride = int(step.params["stride"])
        get = ctx.getter(step.inputs[0])
        out = ctx.out(step.output)
        oh, ow = out.shape[2], out.shape[3]
        inv_area = np.float32(1.0 / (kernel * kernel))
        offsets = [(i, j) for i in range(kernel) for j in range(kernel)]

        def run(n):
            x = get(n)
            i0, j0 = offsets[0]
            np.copyto(out[:n], x[:, :, i0:i0 + oh * stride:stride,
                                 j0:j0 + ow * stride:stride])
            for i, j in offsets[1:]:
                combine(out[:n], x[:, :, i:i + oh * stride:stride,
                                   j:j + ow * stride:stride], out=out[:n])
            if scale_by_area:
                np.multiply(out[:n], inv_area, out=out[:n])

        return run
    return build


def _build_global_avg_pool(step, ctx):
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)
    h, w = ctx.shape(step.inputs[0])[2:]
    inv = np.float32(1.0 / (h * w))

    def run(n):
        np.sum(get(n), axis=(2, 3), out=out[:n])
        np.multiply(out[:n], inv, out=out[:n])

    return run


# ----------------------------------------------------------------------
# Shape ops
# ----------------------------------------------------------------------

def _build_flatten(step, ctx):
    start = int(step.params["start_dim"])
    in_shape = ctx.shape(step.inputs[0])
    head = in_shape[1:start]
    tail = int(np.prod(in_shape[start:], dtype=np.int64)) if start < len(
        in_shape) else 1
    get = ctx.getter(step.inputs[0])
    ctx.alias(step.output,
              lambda n: np.ascontiguousarray(get(n)).reshape(
                  (n,) + head + (tail,)))
    return None


def _build_reshape(step, ctx):
    tail = tuple(step.params["tail"])
    get = ctx.getter(step.inputs[0])
    ctx.alias(step.output,
              lambda n: np.ascontiguousarray(get(n)).reshape((n,) + tail))
    return None


def _build_transpose(step, ctx):
    axes = tuple(step.params["axes"])
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)

    def run(n):
        np.copyto(out[:n], np.transpose(get(n), axes))

    return run


def _build_concat(step, ctx):
    axis = int(step.params["axis"])
    getters = [ctx.getter(vid) for vid in step.inputs]
    widths = [ctx.shape(vid)[axis] for vid in step.inputs]
    out = ctx.out(step.output)
    slots = []
    offset = 0
    for width in widths:
        index = [slice(None)] * out.ndim
        index[axis] = slice(offset, offset + width)
        slots.append(tuple(index))
        offset += width

    def run(n):
        for get, slot in zip(getters, slots):
            out[:n][slot] = get(n)

    return run


def _build_pad2d(step, ctx):
    ph, pw = int(step.params["ph"]), int(step.params["pw"])
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)          # arena buffers start zeroed
    h, w = ctx.shape(step.inputs[0])[2:]

    def run(n):
        out[:n, :, ph:ph + h, pw:pw + w] = get(n)

    return run


# ----------------------------------------------------------------------
# Reductions and softmax family
# ----------------------------------------------------------------------

def _normalize_axis(axis):
    if axis is None:
        return None
    if isinstance(axis, (tuple, list)):
        return tuple(int(a) for a in axis)
    return int(axis)


def _build_reduction(npfunc):
    def build(step, ctx):
        axis = _normalize_axis(step.params.get("axis"))
        keepdims = bool(step.params.get("keepdims", False))
        get = ctx.getter(step.inputs[0])
        out = ctx.out(step.output)

        def run(n):
            npfunc(get(n), axis=axis, keepdims=keepdims, out=out[:n])

        return run
    return build


def _build_log_softmax(step, ctx, log=True):
    ndim = len(ctx.shape(step.output))
    axis = int(step.params.get("axis", -1)) % ndim
    if axis == 0:
        raise ValueError("softmax over the batch axis cannot be compiled")
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)
    ebuf = ctx.scratch("exp", out.shape)
    red_shape = tuple(1 if d == axis else s
                      for d, s in enumerate(out.shape))
    mbuf = ctx.scratch("red", red_shape)

    def run(n):
        x = get(n)
        np.max(x, axis=axis, keepdims=True, out=mbuf[:n])
        np.subtract(x, mbuf[:n], out=out[:n])
        np.exp(out[:n], out=ebuf[:n])
        np.sum(ebuf[:n], axis=axis, keepdims=True, out=mbuf[:n])
        if log:
            np.log(mbuf[:n], out=mbuf[:n])
            np.subtract(out[:n], mbuf[:n], out=out[:n])
        else:
            np.divide(ebuf[:n], mbuf[:n], out=out[:n])

    return run


BUILDERS = {
    "conv2d": _build_conv2d,
    "conv2d_relu": lambda step, ctx: _build_conv2d(step, ctx, relu=True),
    "linear": _build_linear,
    "linear_relu": lambda step, ctx: _build_linear(step, ctx, relu=True),
    "batchnorm": _build_batchnorm,
    "batchnorm_relu": lambda step, ctx: _build_batchnorm(step, ctx, relu=True),
    "relu": _build_relu,
    "add": _build_binary(np.add),
    "add_relu": _build_binary(np.add, relu=True),
    "sub": _build_binary(np.subtract),
    "mul": _build_binary(np.multiply),
    "div": _build_binary(np.divide),
    "maximum": _build_binary(np.maximum),
    "minimum": _build_binary(np.minimum),
    "neg": _build_unary(np.negative),
    "exp": _build_unary(np.exp),
    "log": _build_unary(np.log),
    "sqrt": _build_unary(np.sqrt),
    "abs": _build_unary(np.abs),
    "tanh": _build_unary(np.tanh),
    "sigmoid": _build_sigmoid,
    "clip": _build_clip,
    "max_pool2d": _build_pool(np.maximum, scale_by_area=False),
    "avg_pool2d": _build_pool(np.add, scale_by_area=True),
    "global_avg_pool": _build_global_avg_pool,
    "flatten": _build_flatten,
    "reshape": _build_reshape,
    "transpose": _build_transpose,
    "concat": _build_concat,
    "pad2d": _build_pad2d,
    "sum": _build_reduction(np.sum),
    "mean": _build_reduction(np.mean),
    "max": _build_reduction(np.max),
    "log_softmax": _build_log_softmax,
    "softmax": lambda step, ctx: _build_log_softmax(step, ctx, log=False),
}


def register_builders(builders: dict) -> None:
    """Extend the kernel registry (used by :mod:`repro.qinfer.kernels`).

    Re-registering the same builder object for an op is a no-op;
    registering a *different* builder for an existing op is an error, so
    subsystems cannot silently shadow each other's lowerings.
    """
    for op, builder in builders.items():
        existing = BUILDERS.get(op)
        if existing is not None and existing is not builder:
            raise ValueError(f"op {op!r} already has a registered builder")
        BUILDERS[op] = builder


def build_step(step, ctx):
    """Compile one plan step; returns ``run(n)`` or ``None`` for aliases."""
    builder = BUILDERS.get(step.op)
    if builder is None:
        raise NotImplementedError(
            f"no kernel for op {step.op!r} (step: {step.describe()})")
    return builder(step, ctx)
