"""Graph capture: trace one eval-mode forward pass into a static plan.

The eager stack is define-by-run — every forward pass rediscovers the
network topology by executing Python. For inference the topology is fixed,
so we run the model *once* on an example input with two layers of
instrumentation active:

* ``Module.__call__`` is patched so every **leaf layer** (Conv2d, Linear,
  BatchNorm2d, ReLU, pooling, Flatten, Dropout, Identity) records a single
  :class:`Step` with a parameter snapshot, while the ops it runs internally
  are suppressed;
* the functional entry points of :mod:`repro.tensor.ops` and
  :mod:`repro.tensor.conv` are patched so **top-level functional calls**
  (e.g. the ``ops.relu(ops.add(out, residual))`` residual join in ResNet
  blocks) are recorded as their own steps.

Tensors are identified by object identity during the trace (every recorded
tensor is kept alive until capture finishes, so ids cannot be recycled).
A consumed tensor that is neither the model input nor the output of a
recorded step must be a constant leaf — anything else means an op we do not
trace produced it, and capture fails loudly with :class:`PlanError` rather
than silently miscompiling.

Training-only behaviour is rejected up front: the model must be in eval
mode, so BatchNorm uses running statistics and Dropout is the identity.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from ..nn import layers as layers_mod
from ..nn.module import Module
from ..tensor import Tensor, no_grad
from ..tensor import conv as conv_mod
from ..tensor import ops as ops_mod

__all__ = ["PlanError", "Step", "Plan", "capture_plan"]


class PlanError(RuntimeError):
    """Raised when a model cannot be captured into a static plan."""


@dataclass
class Step:
    """One operation of a compiled plan.

    ``inputs`` and ``output`` are value ids — indices into the plan's value
    space (the model input, constants, and every step output). ``params``
    holds op-specific compile-time data: parameter array snapshots, strides,
    axes. ``source`` is the dotted module path (or ``ops.<name>``) the step
    was captured from, for debugging and reports.
    """

    op: str
    inputs: tuple[int, ...]
    output: int
    params: dict[str, Any] = field(default_factory=dict)
    source: str = ""

    def describe(self) -> str:
        args = ", ".join(f"%{i}" for i in self.inputs)
        src = f"  [{self.source}]" if self.source else ""
        return f"%{self.output} = {self.op}({args}){src}"


@dataclass
class Plan:
    """Topologically ordered op list plus value metadata.

    Steps appear in execution order (capture order is execution order by
    construction). ``shapes`` records the shape of every value as seen with
    the example batch; the runtime rescales the leading (batch) axis to its
    buffer capacity. ``constants`` maps value ids of baked inputs (arrays
    consumed by functional ops) to their data.
    """

    steps: list[Step]
    input_id: int
    output_id: int
    shapes: dict[int, tuple[int, ...]]
    constants: dict[int, np.ndarray]
    example_batch: int

    def __len__(self) -> int:
        return len(self.steps)

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for step in self.steps:
            counts[step.op] = counts.get(step.op, 0) + 1
        return counts

    def use_counts(self) -> dict[int, int]:
        """How many times each value id is consumed (output counts once)."""
        counts: dict[int, int] = {}
        for step in self.steps:
            for vid in step.inputs:
                counts[vid] = counts.get(vid, 0) + 1
        counts[self.output_id] = counts.get(self.output_id, 0) + 1
        return counts

    def replace(self, **changes) -> "Plan":
        return replace(self, **changes)

    def summary(self) -> str:
        lines = [f"Plan: {len(self.steps)} steps, input %{self.input_id} "
                 f"{self.shapes[self.input_id]}, output %{self.output_id} "
                 f"{self.shapes[self.output_id]}"]
        lines += [f"  {step.describe()}" for step in self.steps]
        return "\n".join(lines)


class _Tracer:
    def __init__(self):
        self.steps: list[Step] = []
        self.shapes: dict[int, tuple[int, ...]] = {}
        self.constants: dict[int, np.ndarray] = {}
        self._ids: dict[int, int] = {}
        self._keepalive: list[Tensor] = []
        self._next = 0
        self.suppress = 0

    def _new_id(self, shape: tuple[int, ...]) -> int:
        vid = self._next
        self._next += 1
        self.shapes[vid] = shape
        return vid

    def register(self, t: Tensor) -> int:
        vid = self._new_id(tuple(t.shape))
        self._ids[id(t)] = vid
        self._keepalive.append(t)
        return vid

    def alias(self, t: Tensor, vid: int) -> None:
        self._ids[id(t)] = vid
        self._keepalive.append(t)

    def lookup(self, t: Tensor) -> int | None:
        return self._ids.get(id(t))

    def constant(self, value) -> int:
        arr = np.asarray(value.data if isinstance(value, Tensor) else value,
                         dtype=np.float32)
        vid = self._new_id(tuple(arr.shape))
        self.constants[vid] = arr.copy()
        if isinstance(value, Tensor):
            self._ids[id(value)] = vid
            self._keepalive.append(value)
        return vid

    def value_id(self, value, context: str) -> int:
        """Resolve an op input to a value id; constants are baked in."""
        if not isinstance(value, Tensor):
            return self.constant(value)
        vid = self.lookup(value)
        if vid is not None:
            return vid
        if value._op not in ("leaf", "detach"):
            raise PlanError(
                f"{context} consumed a tensor produced by untraced op "
                f"{value._op!r}; only registered layers and the functional "
                f"ops in repro.tensor.ops/conv can be compiled")
        return self.constant(value)

    def emit(self, op: str, inputs: tuple[int, ...], out: Tensor,
             params: dict | None = None, source: str = "") -> int:
        vid = self.register(out)
        self.steps.append(Step(op, inputs, vid, params or {}, source))
        return vid


# ----------------------------------------------------------------------
# Leaf-module capture
# ----------------------------------------------------------------------

def _snap(t: Tensor | None) -> np.ndarray | None:
    return None if t is None else np.array(t.data, dtype=np.float32, copy=True)


def _record_leaf(tracer: _Tracer, module: Module, args: tuple, out: Tensor,
                 source: str) -> None:
    if not args or not isinstance(args[0], Tensor):
        raise PlanError(f"{source}: leaf layer called without a tensor input")
    x = args[0]
    if isinstance(module, (layers_mod.Dropout, layers_mod.Identity)):
        if module.training:
            raise PlanError(f"{source}: Dropout must be in eval mode "
                            "(training-time stochastic ops cannot be compiled)")
        tracer.alias(out, tracer.value_id(x, source))
        return
    xin = tracer.value_id(x, source)
    if isinstance(module, layers_mod.Conv2d):
        tracer.emit("conv2d", (xin,), out, dict(
            weight=_snap(module.weight), bias=_snap(module.bias),
            stride=module.stride, padding=module.padding), source)
    elif isinstance(module, layers_mod.Linear):
        tracer.emit("linear", (xin,), out, dict(
            weight=_snap(module.weight), bias=_snap(module.bias)), source)
    elif isinstance(module, layers_mod.BatchNorm2d):
        if module.training:
            raise PlanError(
                f"{source}: BatchNorm2d is in training mode; compiled "
                "inference requires eval-mode running statistics")
        tracer.emit("batchnorm", (xin,), out, dict(
            gamma=_snap(module.weight), beta=_snap(module.bias),
            mean=module.running_mean.astype(np.float32).copy(),
            var=module.running_var.astype(np.float32).copy(),
            eps=float(module.eps)), source)
    elif isinstance(module, layers_mod.ReLU):
        tracer.emit("relu", (xin,), out, None, source)
    elif isinstance(module, layers_mod.MaxPool2d):
        tracer.emit("max_pool2d", (xin,), out, dict(
            kernel=module.kernel_size, stride=module.stride), source)
    elif isinstance(module, layers_mod.AvgPool2d):
        tracer.emit("avg_pool2d", (xin,), out, dict(
            kernel=module.kernel_size, stride=module.stride), source)
    elif isinstance(module, layers_mod.GlobalAvgPool2d):
        tracer.emit("global_avg_pool", (xin,), out, None, source)
    elif isinstance(module, layers_mod.Flatten):
        tracer.emit("flatten", (xin,), out, dict(start_dim=1), source)
    else:  # pragma: no cover - guarded by _LEAF_TYPES
        raise PlanError(f"{source}: unsupported leaf layer "
                        f"{type(module).__name__}")


_LEAF_TYPES = (layers_mod.Conv2d, layers_mod.Linear, layers_mod.BatchNorm2d,
               layers_mod.ReLU, layers_mod.MaxPool2d, layers_mod.AvgPool2d,
               layers_mod.GlobalAvgPool2d, layers_mod.Flatten,
               layers_mod.Dropout, layers_mod.Identity)


# ----------------------------------------------------------------------
# Functional-op capture
# ----------------------------------------------------------------------

def _bind(args, kwargs, names, defaults):
    """Positional/keyword binding of a simple functional signature."""
    bound = dict(defaults)
    for name, value in zip(names, args):
        bound[name] = value
    bound.update(kwargs)
    return bound


def _rec_binary(name):
    def rec(tracer, args, kwargs, out, src):
        a, b = args[0], args[1]
        tracer.emit(name, (tracer.value_id(a, src), tracer.value_id(b, src)),
                    out, None, src)
    return rec


def _rec_unary(name):
    def rec(tracer, args, kwargs, out, src):
        tracer.emit(name, (tracer.value_id(args[0], src),), out, None, src)
    return rec


def _rec_reduction(name):
    def rec(tracer, args, kwargs, out, src):
        b = _bind(args[1:], kwargs, ("axis", "keepdims"),
                  {"axis": None, "keepdims": False})
        tracer.emit(name, (tracer.value_id(args[0], src),), out,
                    dict(axis=b["axis"], keepdims=bool(b["keepdims"])), src)
    return rec


def _rec_axis(name, default_axis=-1):
    def rec(tracer, args, kwargs, out, src):
        b = _bind(args[1:], kwargs, ("axis",), {"axis": default_axis})
        tracer.emit(name, (tracer.value_id(args[0], src),), out,
                    dict(axis=int(b["axis"])), src)
    return rec


def _rec_reshape(tracer, args, kwargs, out, src):
    a = args[0]
    shape = tuple(args[1] if len(args) > 1 else kwargs["shape"])
    batch = a.shape[0] if isinstance(a, Tensor) and a.ndim else None
    if not shape or shape[0] not in (-1, batch):
        raise PlanError(f"{src}: reshape must preserve the leading batch "
                        f"axis (got target shape {shape})")
    tracer.emit("reshape", (tracer.value_id(a, src),), out,
                dict(tail=tuple(int(s) for s in shape[1:])), src)


def _rec_flatten(tracer, args, kwargs, out, src):
    b = _bind(args[1:], kwargs, ("start_dim",), {"start_dim": 0})
    start = int(b["start_dim"])
    if start < 1:
        raise PlanError(f"{src}: flatten(start_dim=0) folds the batch axis "
                        "and cannot be compiled")
    tracer.emit("flatten", (tracer.value_id(args[0], src),), out,
                dict(start_dim=start), src)


def _rec_transpose(tracer, args, kwargs, out, src):
    b = _bind(args[1:], kwargs, ("axes",), {"axes": None})
    axes = b["axes"]
    if axes is None or tuple(axes)[0] != 0:
        raise PlanError(f"{src}: transpose that moves the batch axis is not "
                        "supported in compiled inference")
    tracer.emit("transpose", (tracer.value_id(args[0], src),), out,
                dict(axes=tuple(int(a) for a in axes)), src)


def _rec_clip(tracer, args, kwargs, out, src):
    b = _bind(args[1:], kwargs, ("low", "high"), {})
    tracer.emit("clip", (tracer.value_id(args[0], src),), out,
                dict(low=float(b["low"]), high=float(b["high"])), src)


def _rec_concat(tracer, args, kwargs, out, src):
    b = _bind(args[1:], kwargs, ("axis",), {"axis": 0})
    axis = int(b["axis"])
    if axis == 0:
        raise PlanError(f"{src}: concat along the batch axis is not "
                        "supported in compiled inference")
    inputs = tuple(tracer.value_id(t, src) for t in args[0])
    tracer.emit("concat", inputs, out, dict(axis=axis), src)


def _rec_pad2d(tracer, args, kwargs, out, src):
    b = _bind(args[1:], kwargs, ("padding",), {})
    pad = b["padding"]
    ph, pw = (pad, pad) if isinstance(pad, int) else pad
    tracer.emit("pad2d", (tracer.value_id(args[0], src),), out,
                dict(ph=int(ph), pw=int(pw)), src)


def _rec_conv2d(tracer, args, kwargs, out, src):
    b = _bind(args[1:], kwargs, ("weight", "bias", "stride", "padding"),
              {"bias": None, "stride": 1, "padding": 0})
    weight, bias = b["weight"], b["bias"]
    tracer.emit("conv2d", (tracer.value_id(args[0], src),), out, dict(
        weight=np.asarray(weight.data if isinstance(weight, Tensor) else weight,
                          dtype=np.float32).copy(),
        bias=None if bias is None else np.asarray(
            bias.data if isinstance(bias, Tensor) else bias,
            dtype=np.float32).copy(),
        stride=int(b["stride"]), padding=int(b["padding"])), src)


def _rec_pool(name):
    def rec(tracer, args, kwargs, out, src):
        b = _bind(args[1:], kwargs, ("kernel", "stride"),
                  {"stride": None})
        kernel = int(b["kernel"])
        stride = int(b["stride"]) if b["stride"] else kernel
        tracer.emit(name, (tracer.value_id(args[0], src),), out,
                    dict(kernel=kernel, stride=stride), src)
    return rec


_OPS_RECORDERS: dict[str, Callable] = {
    **{name: _rec_binary(name)
       for name in ("add", "sub", "mul", "div", "maximum", "minimum")},
    **{name: _rec_unary(name)
       for name in ("relu", "sigmoid", "tanh", "neg", "exp", "log",
                    "sqrt", "abs")},
    **{name: _rec_reduction(name) for name in ("sum", "mean", "max")},
    "log_softmax": _rec_axis("log_softmax"),
    "softmax": _rec_axis("softmax"),
    "reshape": _rec_reshape,
    "flatten": _rec_flatten,
    "transpose": _rec_transpose,
    "clip": _rec_clip,
    "concat": _rec_concat,
    "pad2d": _rec_pad2d,
}

_CONV_RECORDERS: dict[str, Callable] = {
    "conv2d": _rec_conv2d,
    "max_pool2d": _rec_pool("max_pool2d"),
    "avg_pool2d": _rec_pool("avg_pool2d"),
    "global_avg_pool2d": _rec_unary("global_avg_pool"),
}


_CAPTURE_LOCK = threading.RLock()


@contextlib.contextmanager
def _patched(tracer: _Tracer, names: dict[int, str]):
    """Patch Module.__call__ and the functional op entry points.

    The patch is process-global but the *tracing* is thread-local: only
    the capturing thread records steps, every other thread falls straight
    through to the originals. Without this, a server hot-swap compiling a
    replacement model would corrupt (and be corrupted by) concurrent
    eager forwards on other threads. ``_CAPTURE_LOCK`` additionally
    serialises whole captures, so two threads can never interleave their
    patch/unpatch of the same entry points.
    """
    original_call = Module.__call__
    owner = threading.get_ident()

    def traced_call(self, *args, **kwargs):
        if (threading.get_ident() != owner or tracer.suppress
                or not isinstance(self, _LEAF_TYPES)):
            return original_call(self, *args, **kwargs)
        if self._forward_hooks:
            raise PlanError(
                f"{names.get(id(self), type(self).__name__)}: forward hooks "
                "are active; capture would silently drop their effect")
        tracer.suppress += 1
        try:
            out = original_call(self, *args, **kwargs)
        finally:
            tracer.suppress -= 1
        _record_leaf(tracer, self, args, out,
                     names.get(id(self), type(self).__name__))
        return out

    def wrap(mod, name, recorder):
        original = getattr(mod, name)
        src = f"{mod.__name__.rsplit('.', 1)[-1]}.{name}"

        def wrapper(*args, **kwargs):
            if threading.get_ident() != owner or tracer.suppress:
                return original(*args, **kwargs)
            tracer.suppress += 1
            try:
                out = original(*args, **kwargs)
            finally:
                tracer.suppress -= 1
            recorder(tracer, args, kwargs, out, src)
            return out

        return original, wrapper

    patched: list[tuple[Any, str, Any]] = []
    with _CAPTURE_LOCK:
        try:
            Module.__call__ = traced_call
            for mod, recorders in ((ops_mod, _OPS_RECORDERS),
                                   (conv_mod, _CONV_RECORDERS)):
                for name, recorder in recorders.items():
                    original, wrapper = wrap(mod, name, recorder)
                    patched.append((mod, name, original))
                    setattr(mod, name, wrapper)
            yield
        finally:
            Module.__call__ = original_call
            for mod, name, original in patched:
                setattr(mod, name, original)


def capture_plan(model: Module, example_input) -> Plan:
    """Trace one forward pass of ``model`` into a :class:`Plan`.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module` in eval mode whose forward is built
        from registered layers and the functional ops of
        :mod:`repro.tensor.ops` / :mod:`repro.tensor.conv`.
    example_input:
        Batched example (``Tensor`` or array) with the leading batch axis;
        its non-batch shape is frozen into the plan.
    """
    if not isinstance(model, Module):
        raise TypeError(f"capture_plan expects a Module, got {type(model)!r}")
    if model.training:
        raise PlanError(
            "capture requires eval mode — call model.eval() first "
            "(BatchNorm must use running statistics, Dropout must be "
            "the identity)")
    x = (example_input if isinstance(example_input, Tensor)
         else Tensor(np.asarray(example_input, dtype=np.float32)))
    if x.ndim < 2:
        raise PlanError("example input needs a leading batch axis")

    tracer = _Tracer()
    names = {id(m): path or type(m).__name__
             for path, m in model.named_modules()}
    input_id = tracer.register(x)
    with no_grad(), _patched(tracer, names):
        out = model(x)

    if not isinstance(out, Tensor):
        raise PlanError("model output is not a Tensor")
    output_id = tracer.lookup(out)
    if output_id is None:
        raise PlanError("model output was not produced by a traced operation")
    if not tracer.steps:
        raise PlanError("capture recorded no operations")

    plan = Plan(steps=tracer.steps, input_id=input_id, output_id=output_id,
                shapes=tracer.shapes, constants=tracer.constants,
                example_batch=int(x.shape[0]))
    _validate(plan)
    return plan


def _validate(plan: Plan) -> None:
    """Structural checks: SSA ordering and batched step outputs."""
    defined = {plan.input_id, *plan.constants}
    for step in plan.steps:
        for vid in step.inputs:
            if vid not in defined:
                raise PlanError(f"step {step.describe()} uses value %{vid} "
                                "before it is defined")
        if step.output in defined:
            raise PlanError(f"value %{step.output} defined twice")
        defined.add(step.output)
        shape = plan.shapes[step.output]
        if not shape or shape[0] != plan.example_batch:
            raise PlanError(
                f"step {step.describe()} produced shape {shape}; compiled "
                "inference requires every intermediate to keep the leading "
                "batch axis")
