"""Micro-batching: coalesce single-sample requests into engine batches.

Single-sample inference wastes most of a numpy matmul's throughput. The
:class:`BatchRunner` owns a worker thread that drains a queue of pending
requests, groups up to ``max_batch`` samples (waiting at most ``max_wait``
seconds for stragglers once the first request arrives), runs them through
the compiled engine as one batch, and scatters the per-sample results back
to their tickets.

Typical use::

    with BatchRunner(engine, max_batch=32, max_wait=0.002) as runner:
        ticket = runner.submit(sample)        # from any thread
        probs = ticket.result()               # blocks until ready
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

__all__ = ["InferenceTicket", "BatchRunner"]

_STOP = object()


class InferenceTicket:
    """Handle to one submitted sample; resolves to its output row."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise TimeoutError("inference result not ready")
        if self._error is not None:
            raise self._error
        return self._value

    def _complete(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class BatchRunner:
    """Daemon worker that micro-batches submissions into ``engine.run``.

    Engine exceptions are contained per batch (forwarded to the affected
    tickets only). Should the worker thread itself die of an unexpected
    error, every ticket it was holding is failed — no ticket ever hangs —
    and the next :meth:`submit` transparently restarts a fresh worker
    (counted in ``stats["restarts"]``), mirroring the respawn treatment
    of the process pool supervisor. Callers bound their own wait with
    ``ticket.result(timeout=...)``; a thread cannot be killed from
    outside, so a wedged ``engine.run`` surfaces as those timeouts.
    """

    def __init__(self, engine, max_batch: int | None = None,
                 max_wait: float = 0.002):
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.engine = engine
        self.max_batch = int(engine.max_batch if max_batch is None
                             else max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_wait = float(max_wait)
        self.stats = {"samples": 0, "batches": 0, "largest_batch": 0,
                      "restarts": 0}
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._lock = threading.Lock()
        self._worker = self._start_worker()

    def _start_worker(self) -> threading.Thread:
        worker = threading.Thread(target=self._loop, daemon=True,
                                  name="repro-infer-batcher")
        worker.start()
        return worker

    def _ensure_worker(self) -> None:
        """Respawn the worker if it died; submissions must never hang."""
        with self._lock:
            if not self._worker.is_alive() and not self._closed:
                self.stats["restarts"] += 1
                self._worker = self._start_worker()

    def submit(self, sample) -> InferenceTicket:
        """Queue one sample (no batch axis); returns its ticket."""
        if self._closed:
            raise RuntimeError("BatchRunner is closed")
        self._ensure_worker()
        sample = np.asarray(sample, dtype=np.float32)
        ticket = InferenceTicket()
        self._queue.put((sample, ticket))
        return ticket

    def _collect(self) -> list:
        """Block for the first request, then coalesce until full or deadline."""
        first = self._queue.get()
        if first is _STOP:
            return []
        pending = [first]
        deadline = time.monotonic() + self.max_wait
        while len(pending) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _STOP:
                self._queue.put(_STOP)   # re-arm for the outer loop
                break
            pending.append(item)
        return pending

    def _loop(self) -> None:
        pending: list = []
        try:
            while True:
                pending = self._collect()
                if not pending:
                    return
                samples = [s for s, _ in pending]
                tickets = [t for _, t in pending]
                try:
                    batch = np.stack(samples)
                    outputs = self.engine.run(batch)
                except BaseException as exc:  # noqa: BLE001 - to callers
                    for ticket in tickets:
                        ticket._fail(exc)
                    continue
                self.stats["samples"] += len(tickets)
                self.stats["batches"] += 1
                self.stats["largest_batch"] = max(self.stats["largest_batch"],
                                                  len(tickets))
                for ticket, row in zip(tickets, outputs):
                    ticket._complete(np.array(row, copy=True))
                pending = []
        except BaseException as exc:  # noqa: BLE001 - worker is dying
            # Something escaped the per-batch containment (a malformed
            # queue item, an allocator failure in _collect). This worker
            # is done for — but no ticket may be left hanging: fail the
            # current batch and everything still queued, then exit so
            # the next submit() can respawn a clean worker.
            self._fail_stranded(pending, exc)

    def _fail_stranded(self, pending: list, exc: BaseException) -> None:
        def fail(item) -> None:
            if (isinstance(item, tuple) and len(item) == 2
                    and isinstance(item[1], InferenceTicket)):
                item[1]._fail(exc)

        for item in pending:
            fail(item)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                self._queue.put(_STOP)   # preserve the shutdown signal
                return
            fail(item)

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop accepting work and join the worker thread."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._worker.join(timeout)

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
