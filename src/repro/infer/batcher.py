"""Micro-batching: coalesce single-sample requests into engine batches.

Single-sample inference wastes most of a numpy matmul's throughput. The
:class:`BatchRunner` owns a worker thread that drains a queue of pending
requests, groups up to ``max_batch`` samples (waiting at most ``max_wait``
seconds for stragglers once the first request arrives), runs them through
the compiled engine as one batch, and scatters the per-sample results back
to their tickets.

All waiting goes through an injectable :class:`repro.clock.Clock`
(``clock=``), so the batching window and its deadline are testable on a
:class:`repro.clock.FakeClock` with no wall-clock sleeps; the serving
layer (:mod:`repro.serve`) additionally retunes ``max_wait`` on the fly
through the ``on_batch`` hook to widen the window under load.

A submission may carry an absolute *deadline* (seconds on the runner's
clock axis). A ticket whose deadline has passed while it sat in the
queue is evicted during batch formation — failed with
:class:`DeadlineExpired` and counted in ``stats["expired"]`` — *before*
the engine runs, so an already-dead request never wastes engine time.

Typical use::

    with BatchRunner(engine, max_batch=32, max_wait=0.002) as runner:
        ticket = runner.submit(sample)        # from any thread
        probs = ticket.result()               # blocks until ready
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from ..clock import SYSTEM_CLOCK, Clock

__all__ = ["InferenceTicket", "TicketCancelled", "DeadlineExpired",
           "BatchRunner"]

_STOP = object()


class TicketCancelled(RuntimeError):
    """The ticket was cancelled before its batch ran."""


class DeadlineExpired(TimeoutError):
    """The ticket's deadline passed before its batch could run."""


class InferenceTicket:
    """Handle to one submitted sample; resolves to its output row.

    A ticket resolves exactly once — to a value, an error, or (via
    :meth:`cancel`) a :class:`TicketCancelled`. Cancelling a ticket whose
    batch has not run yet also tells the worker to drop the sample, so a
    caller that times out does not leave an unresolved ticket (or wasted
    compute) behind. ``deadline`` (absolute clock seconds, or None) is
    set by :meth:`BatchRunner.submit` and read by the batch-formation
    loop to evict expired work.
    """

    __slots__ = ("_event", "_lock", "_value", "_error", "_callbacks",
                 "deadline")

    def __init__(self, deadline: float | None = None):
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._value = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        self.deadline = deadline

    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        return isinstance(self._error, TicketCancelled)

    def result(self, timeout: float | None = None, *,
               cancel_on_timeout: bool = False) -> np.ndarray:
        """Block for the output row.

        With ``cancel_on_timeout=True`` a timeout also :meth:`cancel`\\ s
        the ticket, so the caller walks away clean instead of leaking a
        pending entry; if the batch won the race and completed anyway,
        the value is returned instead of raising.
        """
        if not self._event.wait(timeout):
            if not cancel_on_timeout or self.cancel():
                raise TimeoutError("inference result not ready")
        if self._error is not None:
            raise self._error
        return self._value

    def cancel(self) -> bool:
        """Resolve the ticket as cancelled; False if it already resolved."""
        return self._fail(TicketCancelled("inference request cancelled"))

    def add_done_callback(self, fn) -> None:
        """Run ``fn(ticket)`` once resolved (immediately if already done).

        Callbacks fire on the resolving thread (usually the batcher
        worker); exceptions they raise are swallowed — a misbehaving
        observer must not take the batch loop down with it.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        self._invoke(fn)

    def _invoke(self, fn) -> None:
        try:
            fn(self)
        except Exception:  # noqa: BLE001 - observer errors are not ours
            pass

    def _resolve(self, value, error) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            self._invoke(fn)
        return True

    def _complete(self, value: np.ndarray) -> bool:
        return self._resolve(value, None)

    def _fail(self, error: BaseException) -> bool:
        return self._resolve(None, error)


class BatchRunner:
    """Daemon worker that micro-batches submissions into ``engine.run``.

    Engine exceptions are contained per batch (forwarded to the affected
    tickets only). Should the worker thread itself die of an unexpected
    error, every ticket it was holding is failed — no ticket ever hangs —
    and the next :meth:`submit` transparently restarts a fresh worker
    (counted in ``stats["restarts"]``), mirroring the respawn treatment
    of the process pool supervisor. Callers bound their own wait with
    ``ticket.result(timeout=...)``; a thread cannot be killed from
    outside, so a wedged ``engine.run`` surfaces as those timeouts.

    ``on_batch(samples, outputs)`` (optional) observes every successful
    batch — the serving layer uses it for batch-size metrics, adaptive
    window control, and the bitwise replay trace of its equivalence tests.
    An observer that raises is contained: the fault is counted in
    ``stats["observer_faults"]``, reported through ``on_observer_error``
    (if set), and the worker keeps serving — by the time the observer
    runs, every ticket in the batch has already resolved, so the hook can
    never cost a caller its result.
    """

    def __init__(self, engine, max_batch: int | None = None,
                 max_wait: float = 0.002, *, clock: Clock = SYSTEM_CLOCK,
                 on_batch=None, on_observer_error=None):
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.engine = engine
        self.max_batch = int(engine.max_batch if max_batch is None
                             else max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_wait = float(max_wait)
        self.clock = clock
        self.on_batch = on_batch
        self.on_observer_error = on_observer_error
        self.stats = {"samples": 0, "batches": 0, "largest_batch": 0,
                      "restarts": 0, "cancelled": 0, "expired": 0,
                      "observer_faults": 0}
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._lock = threading.Lock()
        self._worker = self._start_worker()

    def _start_worker(self) -> threading.Thread:
        worker = threading.Thread(target=self._loop, daemon=True,
                                  name="repro-infer-batcher")
        worker.start()
        return worker

    def _ensure_worker(self) -> None:
        """Respawn the worker if it died; submissions must never hang."""
        with self._lock:
            if not self._worker.is_alive() and not self._closed:
                self.stats["restarts"] += 1
                self._worker = self._start_worker()

    def submit(self, sample, *,
               deadline: float | None = None) -> InferenceTicket:
        """Queue one sample (no batch axis); returns its ticket.

        ``deadline`` is absolute seconds on this runner's clock axis
        (``clock.monotonic() + budget``); an expired ticket is evicted
        before its batch forms instead of burning engine time.
        """
        if self._closed:
            raise RuntimeError("BatchRunner is closed")
        self._ensure_worker()
        sample = np.asarray(sample, dtype=np.float32)
        ticket = InferenceTicket(deadline)
        self._queue.put((sample, ticket))
        if self._closed:
            # Lost the race against close(): the worker may already have
            # consumed _STOP and exited, stranding this ticket behind it.
            # Resolve it here — submit-after-close must never hang.
            if ticket._fail(RuntimeError("BatchRunner is closed")):
                raise RuntimeError("BatchRunner is closed")
        return ticket

    def _collect(self) -> list:
        """Block for the first request, then coalesce until full or deadline.

        Cancelled tickets are dropped on the floor here (counted in
        ``stats["cancelled"]``), and tickets whose own deadline has
        passed are evicted — failed with :class:`DeadlineExpired` and
        counted in ``stats["expired"]`` — so the batch that reaches the
        engine holds only work somebody is still waiting for.
        """
        first = self._queue.get()
        if first is _STOP:
            return []
        pending = [first]
        deadline = self.clock.monotonic() + self.max_wait
        while len(pending) < self.max_batch:
            remaining = deadline - self.clock.monotonic()
            if remaining <= 0:
                break
            try:
                item = self.clock.get(self._queue, remaining)
            except queue.Empty:
                break
            if item is _STOP:
                self._queue.put(_STOP)   # re-arm for the outer loop
                break
            pending.append(item)
        now = self.clock.monotonic()
        live = []
        for sample, ticket in pending:
            if ticket.done():
                self.stats["cancelled"] += 1
            elif ticket.deadline is not None and ticket.deadline <= now:
                if ticket._fail(DeadlineExpired(
                        "request deadline passed while queued for a batch")):
                    self.stats["expired"] += 1
                else:
                    self.stats["cancelled"] += 1
            else:
                live.append((sample, ticket))
        return live

    def _loop(self) -> None:
        pending: list = []
        try:
            while True:
                pending = self._collect()
                if not pending:
                    # Either the _STOP sentinel (close() sets _closed before
                    # enqueueing it) or a batch whose every ticket was
                    # cancelled while it coalesced — only the former ends
                    # the worker.
                    if self._closed:
                        return
                    continue
                samples = [s for s, _ in pending]
                tickets = [t for _, t in pending]
                try:
                    batch = np.stack(samples)
                    outputs = self.engine.run(batch)
                except BaseException as exc:  # noqa: BLE001 - to callers
                    for ticket in tickets:
                        ticket._fail(exc)
                    continue
                self.stats["samples"] += len(tickets)
                self.stats["batches"] += 1
                self.stats["largest_batch"] = max(self.stats["largest_batch"],
                                                  len(tickets))
                for ticket, row in zip(tickets, outputs):
                    if not ticket._complete(np.array(row, copy=True)):
                        self.stats["cancelled"] += 1
                if self.on_batch is not None:
                    try:
                        self.on_batch(batch, outputs)
                    except Exception as exc:  # noqa: BLE001 - observer's bug
                        self.stats["observer_faults"] += 1
                        if self.on_observer_error is not None:
                            try:
                                self.on_observer_error(exc)
                            except Exception:  # noqa: BLE001 - both hooks bad
                                pass
                pending = []
        except BaseException as exc:  # noqa: BLE001 - worker is dying
            # Something escaped the per-batch containment (a malformed
            # queue item, an allocator failure in _collect). This worker
            # is done for — but no ticket may be left hanging: fail the
            # current batch and everything still queued, then exit so
            # the next submit() can respawn a clean worker.
            self._fail_stranded(pending, exc)

    def _fail_stranded(self, pending: list, exc: BaseException) -> None:
        def fail(item) -> None:
            if (isinstance(item, tuple) and len(item) == 2
                    and isinstance(item[1], InferenceTicket)):
                item[1]._fail(exc)

        for item in pending:
            fail(item)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                self._queue.put(_STOP)   # preserve the shutdown signal
                return
            fail(item)

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop accepting work, join the worker, resolve any stragglers."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._worker.join(timeout)
        # Anything still queued (racing submits, items behind _STOP) gets
        # an explicit failure instead of an eternally pending ticket.
        self._fail_stranded([], RuntimeError("BatchRunner is closed"))

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
