"""Table II: pruning-strategy ablation on ResNet56-C10.

Paper numbers (full scale):

    percentage            92.76%  drop -0.95%  ratio 73.7%  FLOPs 55.2%
    threshold             92.78%  drop -0.94%  ratio 72.2%  FLOPs 60.4%
    percentage+threshold  92.89%  drop -0.82%  ratio 77.9%  FLOPs 62.3%

Shape assertion at benchmark scale: every strategy stays inside the
accuracy budget, and the combination prunes at least as much as the weaker
single rule (the paper shows it winning on both axes).
"""

import pytest

from repro.analysis import ExperimentRecord, format_table

from conftest import class_aware_run, save_bench_records

PAPER = {
    "percentage": dict(pruned=92.76, drop=-0.95, ratio=73.7, flops=55.2),
    "threshold": dict(pruned=92.78, drop=-0.94, ratio=72.2, flops=60.4),
    "percentage+threshold": dict(pruned=92.89, drop=-0.82, ratio=77.9,
                                 flops=62.3),
}


def strategy_result(strategy: str):
    return class_aware_run("ResNet56-C10", strategy=strategy)


@pytest.mark.parametrize("strategy", list(PAPER))
def test_table2_strategy(benchmark, strategy):
    result = benchmark.pedantic(strategy_result, args=(strategy,),
                                rounds=1, iterations=1)
    benchmark.extra_info.update({
        "pruned_acc": round(result.final_accuracy, 4),
        "pruning_ratio": round(result.pruning_ratio, 4),
        "flops_reduction": round(result.flops_reduction, 4),
    })
    assert result.accuracy_drop <= 0.08 + 1e-9


def test_table2_report(benchmark):
    def build():
        rows, records = [], []
        for strategy, paper in PAPER.items():
            result = strategy_result(strategy)
            rows.append([
                strategy,
                f"{result.final_accuracy * 100:.2f}%",
                f"{-result.accuracy_drop * 100:+.2f}%",
                f"{result.pruning_ratio * 100:.1f}%",
                f"{result.flops_reduction * 100:.1f}%",
            ])
            records.append(ExperimentRecord(
                experiment="table2", setting=strategy, paper=paper,
                measured=dict(pruned=result.final_accuracy * 100,
                              drop=-result.accuracy_drop * 100,
                              ratio=result.pruning_ratio * 100,
                              flops=result.flops_reduction * 100)))
        save_bench_records("table2", records)
        return format_table(
            ["strategy", "pruned acc", "drop", "prun. ratio", "FLOPs red."],
            rows, title="TABLE II (ResNet56-C10, benchmark scale)")

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))

    combined = strategy_result("percentage+threshold")
    singles = [strategy_result("percentage"), strategy_result("threshold")]
    # Shape: the combination prunes at least as much as the weaker single
    # rule without blowing the accuracy budget.
    assert combined.pruning_ratio >= min(s.pruning_ratio for s in singles) - 0.05
    assert combined.accuracy_drop <= 0.08 + 1e-9
