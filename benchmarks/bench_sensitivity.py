"""Extension: layer sensitivity and its link to class-aware importance.

For each layer of the trained VGG, mask increasing fractions of its
lowest-norm filters (no retraining) and measure accuracy. The class-aware
hypothesis — filters important for many classes matter more — predicts
that layers with higher mean importance scores are the ones whose masking
hurts; we measure that correlation against the cached Table I importance
report.

Shape assertions: masking more filters never helps (monotone curves up to
noise), and the sensitivity/importance rank correlation is not strongly
negative.
"""

import numpy as np
import pytest

from repro.analysis import (ExperimentRecord, layer_sensitivity,
                            sensitivity_vs_importance)
from repro.core.importance import ImportanceReport

from conftest import TASKS, class_aware_run, pretrained, save_bench_records

FRACTIONS = (0.0, 0.3, 0.6)

_STATE: dict[str, object] = {}


def sensitivity_curves():
    if "curves" in _STATE:
        return _STATE["curves"]
    task = TASKS["VGG16-C10"]
    model, train, test, _ = pretrained(task)
    groups = model.prunable_groups()
    curves = layer_sensitivity(model, test, groups, fractions=FRACTIONS)
    _STATE["curves"] = curves
    return curves


def test_sensitivity_curves(benchmark):
    curves = benchmark.pedantic(sensitivity_curves, rounds=1, iterations=1)
    print("\nEXTENSION: layer sensitivity (accuracy with fraction of "
          "lowest-norm filters masked)")
    for name, curve in curves.items():
        cells = "  ".join(f"{f:.0%}:{a * 100:5.1f}%" for f, a
                          in zip(curve.fractions, curve.accuracies))
        print(f"  {name:<14} {cells}")
    # Masking filters can only remove information: monotone within noise.
    violations = 0
    for curve in curves.values():
        if curve.accuracies[-1] > curve.accuracies[0] + 0.05:
            violations += 1
    assert violations <= len(curves) // 4


def test_sensitivity_importance_correlation(benchmark):
    curves = sensitivity_curves()
    summary = class_aware_run("VGG16-C10")  # cached Table I run
    report = ImportanceReport(num_classes=TASKS["VGG16-C10"].num_classes)
    report.total = dict(summary.report_before)

    def correlate():
        return sensitivity_vs_importance(curves, report, fraction=0.6)

    rho = benchmark.pedantic(correlate, rounds=1, iterations=1)
    print(f"\nsensitivity/importance Spearman rho: {rho:.3f}")
    save_bench_records("ext_sensitivity", [ExperimentRecord(
        experiment="ext-sensitivity", setting="VGG16-C10",
        measured=dict(rho=rho))])
    # The class-aware story predicts non-negative association.
    assert rho > -0.5
