"""Fig. 8: score distributions under the four regularisation settings.

The paper trains VGG16 on CIFAR-10 with no regularisation, L1 only, orth
only, and L1+orth, and shows that:

  * L1 yields more filters with importance score 0 (sparse weights);
  * orth yields more filters with the maximum score (diverse filters);
  * the combination yields the most *polarised* distribution.

Shape assertions mirror those three claims via the zero-bin mass, the
top-bin mass and the polarisation index. A companion ablation benchmarks
the paper's max aggregation (Eq. 7) against mean aggregation (design
decision #2 in DESIGN.md).
"""

import pytest

from repro.analysis import (DistributionComparison, ExperimentRecord,
                            polarization_index, score_histogram)
from repro.core import ImportanceConfig, ImportanceEvaluator

from conftest import TASKS, bench_importance, pretrained, save_bench_records

SETTINGS = {
    "none": (0.0, 0.0),
    "L1": (1e-4, 0.0),
    "orth": (0.0, 1e-2),
    "L1+orth": (1e-4, 1e-2),
}

_SCORES: dict[str, object] = {}


def scores_for(label: str):
    if label in _SCORES:
        return _SCORES[label]
    lambda1, lambda2 = SETTINGS[label]
    task = TASKS["VGG16-C10"]
    model, train, _, _ = pretrained(task, lambda1=lambda1, lambda2=lambda2)
    evaluator = ImportanceEvaluator(
        model, train, num_classes=task.num_classes,
        config=bench_importance(task))
    report = evaluator.evaluate([g.conv for g in model.prunable_groups()])
    _SCORES[label] = report.all_scores()
    return _SCORES[label]


@pytest.mark.parametrize("label", list(SETTINGS))
def test_fig8_setting(benchmark, label):
    scores = benchmark.pedantic(scores_for, args=(label,), rounds=1,
                                iterations=1)
    num_classes = TASKS["VGG16-C10"].num_classes
    counts, _ = score_histogram(scores, num_classes)
    benchmark.extra_info.update({
        "mean": round(float(scores.mean()), 3),
        "zero_bin": int(counts[0]),
        "top_bin": int(counts[-1]),
        "polarisation": round(polarization_index(scores, num_classes), 3),
    })
    assert len(scores) > 0


def test_fig8_report(benchmark):
    num_classes = TASKS["VGG16-C10"].num_classes

    def build():
        comparison = DistributionComparison("VGG16-C10 all conv layers",
                                            num_classes)
        records = []
        for label in SETTINGS:
            scores = scores_for(label)
            comparison.add(label, scores)
            counts, _ = score_histogram(scores, num_classes)
            records.append(ExperimentRecord(
                experiment="fig8", setting=label,
                measured=dict(zero_bin=float(counts[0]),
                              top_bin=float(counts[-1]),
                              polarisation=polarization_index(scores,
                                                              num_classes))))
        save_bench_records("fig8", records)
        return comparison

    comparison = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + comparison.render())

    def stats(label):
        scores = scores_for(label)
        counts, _ = score_histogram(scores, num_classes)
        frac = counts / counts.sum()
        return dict(zero=frac[0], top=frac[-1],
                    pol=polarization_index(scores, num_classes))

    none, l1, orth, both = (stats(k) for k in
                            ("none", "L1", "orth", "L1+orth"))
    print(f"\nzero-bin: none={none['zero']:.3f} L1={l1['zero']:.3f} "
          f"orth={orth['zero']:.3f} both={both['zero']:.3f}")
    print(f"top-bin : none={none['top']:.3f} L1={l1['top']:.3f} "
          f"orth={orth['top']:.3f} both={both['top']:.3f}")
    print(f"polarisation: none={none['pol']:.3f} L1={l1['pol']:.3f} "
          f"orth={orth['pol']:.3f} both={both['pol']:.3f}")

    # Paper claims, as ordering constraints with small slack:
    assert l1["zero"] >= none["zero"] - 0.02, "L1 should add zero-score mass"
    assert both["pol"] >= max(none["pol"] - 0.02, 0.0), (
        "L1+orth should polarise at least as much as unregularised")


def test_fig8_aggregation_ablation(benchmark):
    """Design-decision ablation: Eq. 7's max vs mean aggregation."""
    from repro.core import ImportanceConfig, ImportanceEvaluator
    task = TASKS["VGG16-C10"]
    model, train, _, _ = pretrained(task)
    paths = [g.conv for g in model.prunable_groups()]

    def run(aggregation):
        evaluator = ImportanceEvaluator(
            model, train, num_classes=task.num_classes,
            config=ImportanceConfig(images_per_class=5,
                                    tau_mode="quantile", tau_quantile=0.9,
                                    aggregation=aggregation))
        return evaluator.evaluate(paths).all_scores()

    max_scores = benchmark.pedantic(run, args=("max",), rounds=1,
                                    iterations=1)
    mean_scores = run("mean")
    print(f"\naggregation ablation: max-mean score {max_scores.mean():.2f} "
          f"vs mean-mean score {mean_scores.mean():.2f}")
    # Max dominates mean pointwise, so fewer filters look unimportant —
    # the conservative choice the paper makes.
    assert max_scores.mean() >= mean_scores.mean() - 1e-9
