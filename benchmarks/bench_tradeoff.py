"""Ablation: the score-threshold knob and its accuracy/compression frontier.

DESIGN.md design decision #3: the paper fixes one operating point
(threshold = 30% of the class count). This bench sweeps the threshold on
VGG16-C10 and reports the frontier, verifying the knob behaves
monotonically — a higher class-count threshold admits more filters as
prunable and therefore compresses at least as much.
"""

import pytest

from repro.analysis import (ExperimentRecord, format_table, pareto_front,
                            threshold_sweep)
from repro.core import FrameworkConfig

from conftest import IMAGE_SIZE, TASKS, bench_importance, pretrained, \
    save_bench_records

THRESHOLDS = [1.0, 3.0, 5.0]

_POINTS: dict[str, object] = {}


def sweep():
    if "points" in _POINTS:
        return _POINTS["points"]
    task = TASKS["VGG16-C10"]
    model, train, test, _ = pretrained(task)
    points = threshold_sweep(
        model, train, test, num_classes=task.num_classes,
        input_shape=(3, IMAGE_SIZE, IMAGE_SIZE),
        thresholds=THRESHOLDS,
        base_config=FrameworkConfig(
            max_fraction_per_iteration=0.12, finetune_epochs=3,
            accuracy_drop_tolerance=0.10, max_iterations=4,
            finetune_lr=0.01,
            importance=bench_importance(task)),
        training=task.training())
    _POINTS["points"] = points
    return points


def test_tradeoff_sweep(benchmark):
    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{p.threshold:.1f}", f"{p.accuracy * 100:.2f}%",
             f"{p.pruning_ratio * 100:.1f}%",
             f"{p.flops_reduction * 100:.1f}%", p.stop_reason]
            for p in points]
    print("\n" + format_table(
        ["threshold", "accuracy", "prun. ratio", "FLOPs red.", "stop"],
        rows, title="ABLATION: threshold sweep (VGG16-C10)"))
    save_bench_records("ext_tradeoff", [
        ExperimentRecord(
            experiment="ext-tradeoff", setting=f"thr={p.threshold}",
            measured=dict(acc=p.accuracy * 100,
                          ratio=p.pruning_ratio * 100,
                          flops=p.flops_reduction * 100))
        for p in points])

    ratios = [p.pruning_ratio for p in points]
    # Monotone knob: higher threshold never prunes less (small slack for
    # fine-tuning stochasticity near convergence).
    assert all(b >= a - 0.05 for a, b in zip(ratios, ratios[1:]))


def test_tradeoff_pareto(benchmark):
    points = sweep()
    front = benchmark.pedantic(pareto_front, args=(points,), rounds=1,
                               iterations=1)
    assert 1 <= len(front) <= len(points)
    print("\npareto frontier:")
    for p in front:
        print(f"  thr={p.threshold:.1f} acc={p.accuracy:.3f} "
              f"ratio={p.pruning_ratio:.3f}")
