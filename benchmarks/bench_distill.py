"""Extension: knowledge-distillation-assisted recovery.

The paper fine-tunes with hard labels after each pruning iteration; its
related work lists distillation as the sibling compression technique
[7][8]. Since the framework snapshots the unpruned model anyway, the
snapshot can serve as a free teacher. This bench prunes a trained VGG
one-shot (30% of filters by L1 norm) and compares recovery by plain
fine-tuning vs distillation fine-tuning under the same epoch budget.

Shape assertion: distillation recovers at least as well as plain
fine-tuning minus noise slack (on larger tasks it typically wins).
"""

import copy

import numpy as np
import pytest

from repro.analysis import ExperimentRecord
from repro.baselines import L1NormScorer, ScoringContext
from repro.core import (Trainer, distill_finetune, evaluate_model,
                        prune_groups)
from repro.core.surgery import group_sizes

from conftest import TASKS, pretrained, save_bench_records

_STATE: dict[str, object] = {}

EPOCHS = 5


def setup_pruned():
    """Return (teacher, pruned student template, datasets, task)."""
    if "setup" in _STATE:
        return _STATE["setup"]
    task = TASKS["VGG16-C10"]
    teacher, train, test, _ = pretrained(task)
    student = copy.deepcopy(teacher)
    groups = student.prunable_groups()
    sizes = group_sizes(student, groups)
    scores = L1NormScorer().scores(student, groups, ScoringContext())
    keep = {}
    for g in groups:
        order = np.argsort(-scores[g.name], kind="stable")
        keep[g.name] = np.sort(order[:max(int(sizes[g.name] * 0.7), 1)])
    prune_groups(student, groups, keep)
    _STATE["setup"] = (teacher, student, train, test, task)
    return _STATE["setup"]


def recovery(mode: str) -> float:
    key = f"acc_{mode}"
    if key in _STATE:
        return _STATE[key]
    teacher, template, train, test, task = setup_pruned()
    student = copy.deepcopy(template)
    import dataclasses
    cfg = dataclasses.replace(task.training(), lr=0.01)
    if mode == "plain":
        Trainer(student, train, test, cfg).train(epochs=EPOCHS)
    else:
        distill_finetune(student, teacher, train, test, cfg,
                         epochs=EPOCHS, alpha=0.5, temperature=2.0)
    _, acc = evaluate_model(student, test)
    _STATE[key] = acc
    return acc


@pytest.mark.parametrize("mode", ["plain", "distill"])
def test_distill_recovery(benchmark, mode):
    acc = benchmark.pedantic(recovery, args=(mode,), rounds=1, iterations=1)
    benchmark.extra_info["accuracy"] = round(acc, 4)
    assert 0.0 <= acc <= 1.0


def test_distill_report(benchmark):
    def build():
        teacher, template, train, test, task = setup_pruned()
        _, pruned_acc = evaluate_model(template, test)
        plain = recovery("plain")
        distilled = recovery("distill")
        save_bench_records("ext_distill", [
            ExperimentRecord(experiment="ext-distill", setting=m,
                             measured=dict(acc=a * 100))
            for m, a in (("after-prune", pruned_acc), ("plain", plain),
                         ("distill", distilled))])
        return pruned_acc, plain, distilled

    pruned_acc, plain, distilled = benchmark.pedantic(build, rounds=1,
                                                      iterations=1)
    print(f"\nEXTENSION: distillation-assisted recovery (VGG16-C10, "
          f"30% one-shot L1 prune, {EPOCHS} recovery epochs)")
    print(f"  after prune : {pruned_acc * 100:6.2f}%")
    print(f"  plain       : {plain * 100:6.2f}%")
    print(f"  distillation: {distilled * 100:6.2f}%")
    assert plain >= pruned_acc - 0.02        # fine-tuning helps
    assert distilled >= plain - 0.05          # distillation competitive
