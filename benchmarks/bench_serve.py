"""Closed-loop serving benchmark: latency/throughput vs offered load.

Boots a real socket server with dense, channel-pruned, and int8
quantized-artifact variants of the bench model (``--variant`` selects a
subset), sweeps concurrent connections against each, and records
p50/p99 latency and sustained throughput to ``BENCH_serve.json`` at the
repo root (schema in ``docs/serving.md``):

    python benchmarks/bench_serve.py              # full sweep
    python benchmarks/bench_serve.py --smoke      # tiny CI variant

Smoke mode additionally asserts the serving contract — zero dropped
requests, zero errors, finite positive p99 — at every sweep point.
"""

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.serve.bench import (_VARIANTS, format_table, run_bench,  # noqa: E402
                               write_bench)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--connections", default="1,4,16",
                        help="comma-separated offered-load sweep")
    parser.add_argument("--variant", action="append", choices=_VARIANTS,
                        help="benchmark only these variants "
                             "(default: all of %s)" % (_VARIANTS,))
    parser.add_argument("--requests", type=int, default=40,
                        help="requests per connection at each sweep point")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny model and short sweep, for CI")
    parser.add_argument("--replicas", type=int, default=0,
                        help="bench the replicated tier: N replica worker "
                             "processes behind the health-probed router "
                             "(0 = the in-process server)")
    parser.add_argument("--out", default=str(ROOT / "BENCH_serve.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)

    connections = tuple(int(c) for c in args.connections.split(","))
    results = run_bench(smoke=args.smoke, seed=args.seed,
                        connections=connections,
                        requests_per_connection=args.requests,
                        max_batch=args.max_batch,
                        variants=tuple(args.variant) if args.variant
                        else _VARIANTS,
                        replicas=args.replicas)
    print(format_table(results))
    write_bench(results, args.out)
    print(f"\nresults written to {args.out}")

    top = max(results["connection_sweep"])
    rps = {e["variant"]: e["throughput_rps"] for e in results["entries"]
           if e["connections"] == top}
    if "dense" in rps and "pruned" in rps and rps["dense"] > 0:
        print(f"pruned/dense throughput at {top} connections: "
              f"{rps['pruned'] / rps['dense']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
