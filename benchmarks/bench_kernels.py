"""Engine micro-benchmarks and the paper's Taylor-vs-exact speedup claim.

The paper motivates the first-order Taylor approximation (Eq. 4) by the
cost of the exact zeroing evaluation (Eq. 3): one forward pass *per
activation* versus one forward+backward pass per batch. This file measures
that ratio directly, plus the throughput of the kernels everything else is
built from.
"""

import numpy as np
import pytest

from repro.core import ExactZeroingEngine, TaylorScoreEngine, prune_groups
from repro.baselines import trace_coupled_groups
from repro.flops import profile_model
from repro.models import MLP, vgg11
from repro.tensor import Tensor, conv2d, max_pool2d
from repro.tensor.conv import im2col


rng = np.random.default_rng(0)


class TestConvKernels:
    def test_conv_forward(self, benchmark):
        x = Tensor(rng.normal(size=(8, 16, 16, 16)).astype(np.float32))
        w = Tensor(rng.normal(size=(32, 16, 3, 3)).astype(np.float32))
        benchmark(lambda: conv2d(x, w, padding=1))

    def test_conv_forward_backward(self, benchmark):
        x = Tensor(rng.normal(size=(8, 16, 16, 16)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.normal(size=(32, 16, 3, 3)).astype(np.float32),
                   requires_grad=True)

        def run():
            x.zero_grad()
            w.zero_grad()
            conv2d(x, w, padding=1).sum().backward()

        benchmark(run)

    def test_im2col(self, benchmark):
        x = rng.normal(size=(8, 16, 16, 16)).astype(np.float32)
        benchmark(lambda: im2col(x, 3, 3, stride=1, padding=1))

    def test_max_pool(self, benchmark):
        x = Tensor(rng.normal(size=(8, 32, 16, 16)).astype(np.float32))
        benchmark(lambda: max_pool2d(x, 2))


class TestModelKernels:
    def test_vgg_forward(self, benchmark):
        model = vgg11(num_classes=10, image_size=16, width=0.25)
        model.eval()
        x = Tensor(rng.normal(size=(8, 3, 16, 16)).astype(np.float32))
        from repro.tensor import no_grad

        def run():
            with no_grad():
                model(x)

        benchmark(run)

    def test_profile_model(self, benchmark):
        model = vgg11(num_classes=10, image_size=16, width=0.25)
        benchmark(lambda: profile_model(model, (3, 16, 16)))

    def test_depgraph_trace(self, benchmark):
        from repro.models import resnet20
        model = resnet20(num_classes=10, width=0.25)
        benchmark(lambda: trace_coupled_groups(model, (3, 8, 8)))

    def test_surgery(self, benchmark):
        import copy
        base = vgg11(num_classes=10, image_size=8, width=0.5)
        groups = base.prunable_groups()
        keep = {g.name: np.arange(
            max(base.get_module(g.conv).out_channels // 2, 1))
            for g in groups}

        def run():
            model = copy.deepcopy(base)
            prune_groups(model, model.prunable_groups(), keep)

        benchmark(run)


class TestTaylorVsExact:
    """The efficiency argument for Eq. 4 over Eq. 3 (Sec. III-B)."""

    @staticmethod
    def _setup():
        model = MLP(24, [12, 8], 3, seed=0)
        images = rng.normal(size=(4, 24)).astype(np.float32)
        targets = np.array([0, 1, 2, 0])
        paths = [g.conv for g in model.prunable_groups()]
        return model, images, targets, paths

    def test_taylor_engine(self, benchmark):
        model, images, targets, paths = self._setup()
        engine = TaylorScoreEngine(model, paths)
        benchmark(lambda: engine.scores(images, targets))

    def test_exact_engine(self, benchmark):
        model, images, targets, paths = self._setup()
        engine = ExactZeroingEngine(model, paths)
        benchmark.pedantic(lambda: engine.scores(images, targets),
                           rounds=3, iterations=1)

    def test_speedup_claim(self, benchmark):
        """Taylor must be at least an order of magnitude faster even on a
        20-activation toy network; the gap widens with activation count."""
        import time
        model, images, targets, paths = self._setup()
        taylor = TaylorScoreEngine(model, paths)
        exact = ExactZeroingEngine(model, paths)

        def measure():
            t0 = time.perf_counter()
            for _ in range(5):
                taylor.scores(images, targets)
            t_taylor = (time.perf_counter() - t0) / 5
            t0 = time.perf_counter()
            exact.scores(images, targets)
            t_exact = time.perf_counter() - t0
            return t_exact / t_taylor

        ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
        benchmark.extra_info["exact_over_taylor"] = round(ratio, 1)
        print(f"\nexact/Taylor cost ratio on a 20-activation MLP: {ratio:.1f}x")
        assert ratio > 5.0


class TestImportanceEvaluation:
    def test_full_importance_pass(self, benchmark, ):
        from repro.core import ImportanceConfig, ImportanceEvaluator
        from repro.data import SyntheticConfig, SyntheticImageClassification
        model = vgg11(num_classes=5, image_size=8, width=0.25)
        data = SyntheticImageClassification(SyntheticConfig(
            num_classes=5, image_size=8, samples_per_class=10, seed=0))
        evaluator = ImportanceEvaluator(
            model, data, num_classes=5,
            config=ImportanceConfig(images_per_class=5))
        paths = [g.conv for g in model.prunable_groups()]
        benchmark.pedantic(lambda: evaluator.evaluate(paths), rounds=2,
                           iterations=1)
