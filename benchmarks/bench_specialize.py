"""Extension experiment: class-subset specialisation.

Not a paper table — the operational consequence of the paper's central
object, the per-class importance matrix (Eq. 5–7): a trained 10-class
network is specialised to 2-, 3- and 5-class subsets by removing every
filter no retained class needs. Criteria that only produce a scalar per
filter (L1 norm, HRank, ...) cannot express this operation at all.

Shape assertions: fewer retained classes → larger pruning ratio, and the
specialised models stay well above chance on their subset.
"""

import copy

import pytest

from repro.analysis import ExperimentRecord, format_table
from repro.core import SpecializationConfig, specialize

from conftest import IMAGE_SIZE, TASKS, bench_importance, pretrained, \
    save_bench_records

SUBSETS = {
    "2-class": [0, 5],
    "3-class": [1, 4, 8],
    "5-class": [0, 2, 4, 6, 8],
}

_RESULTS: dict[str, object] = {}


def specialize_run(label: str):
    if label in _RESULTS:
        return _RESULTS[label]
    task = TASKS["VGG16-C10"]
    base, train, test, _ = pretrained(task)
    model = copy.deepcopy(base)
    import dataclasses
    result = specialize(
        model, train, test, num_classes=task.num_classes,
        classes=SUBSETS[label],
        input_shape=(3, IMAGE_SIZE, IMAGE_SIZE),
        config=SpecializationConfig(
            min_class_score=0.3, finetune_epochs=4,
            importance=bench_importance(task)),
        training=dataclasses.replace(task.training(), lr=0.01))
    _RESULTS[label] = result
    return result


@pytest.mark.parametrize("label", list(SUBSETS))
def test_specialize_subset(benchmark, label):
    result = benchmark.pedantic(specialize_run, args=(label,), rounds=1,
                                iterations=1)
    chance = 1.0 / len(SUBSETS[label])
    benchmark.extra_info.update({
        "accuracy": round(result.accuracy, 4),
        "pruning_ratio": round(result.pruning_ratio, 4),
    })
    assert result.accuracy > chance + 0.15
    assert result.pruning_ratio > 0.05


def test_specialize_report(benchmark):
    def build():
        rows, records = [], []
        for label, classes in SUBSETS.items():
            result = specialize_run(label)
            rows.append([
                label,
                f"{result.accuracy * 100:.2f}%",
                f"{result.pruning_ratio * 100:.1f}%",
                f"{result.flops_reduction * 100:.1f}%",
            ])
            records.append(ExperimentRecord(
                experiment="ext-specialize", setting=label,
                measured=dict(acc=result.accuracy * 100,
                              ratio=result.pruning_ratio * 100,
                              flops=result.flops_reduction * 100)))
        save_bench_records("ext_specialize", records)
        return format_table(
            ["subset", "accuracy", "prun. ratio", "FLOPs red."],
            rows, title="EXTENSION: class-subset specialisation (VGG16-C10)")

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))

    two = specialize_run("2-class")
    five = specialize_run("5-class")
    # Fewer retained classes leave fewer needed filters.
    assert two.pruning_ratio >= five.pruning_ratio - 0.05
