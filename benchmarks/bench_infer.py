"""Eager-vs-compiled inference latency/throughput benchmark.

Runs every model of the compiled-inference bench suite (dense and pruned,
across a batch-size sweep) and records the results to ``BENCH_infer.json``
at the repo root. Unlike the pytest-benchmark files next to it, this is a
standalone script so CI and developers get one reproducible entry point:

    python benchmarks/bench_infer.py              # full suite
    python benchmarks/bench_infer.py --smoke      # tiny CI variant
"""

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.infer.bench import format_table, run_bench, write_bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-sizes", default="1,8,32",
                        help="comma-separated batch sizes")
    parser.add_argument("--repeats", type=int, default=10,
                        help="timing repeats per point (median is kept)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny models and few repeats, for CI")
    parser.add_argument("--quant", action="store_true",
                        help="extend the sweep to the int8 engine "
                             "({dense,pruned} x {fp32,int8} grid); with "
                             "--smoke, asserts the size and accuracy gates")
    parser.add_argument("--out", default=str(ROOT / "BENCH_infer.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)

    batch_sizes = tuple(int(b) for b in args.batch_sizes.split(","))
    results = run_bench(batch_sizes=batch_sizes, repeats=args.repeats,
                        smoke=args.smoke, seed=args.seed, quant=args.quant)
    print(format_table(results))
    write_bench(results, args.out)
    print(f"\nresults written to {args.out}")

    conv_32 = [e for e in results["entries"]
               if e["batch"] == max(batch_sizes) and e["model"] != "mlp"]
    if conv_32:
        best = max(e["speedup"] for e in conv_32)
        print(f"best conv-model speedup at batch {max(batch_sizes)}: "
              f"{best:.2f}x")
    if args.quant:
        ratios = [e["size_ratio"] for e in results["entries"]
                  if "size_ratio" in e]
        if ratios:
            print(f"int8 artifact size ratio: {min(ratios):.2f}x - "
                  f"{max(ratios):.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
