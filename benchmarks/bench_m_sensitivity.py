"""Sec. IV claim: M = 10 images per class is enough.

"We have verified that by evaluating more than 10 images the importance
scores of filters are almost the same with those with 10 images."

This bench computes importance reports for M in {2, 5, 10, 20} on the
Table I VGG model and measures Spearman rank correlation of the filter
scores against the largest M. Shape assertion: the correlation is already
high at M=10 and increases (weakly) with M.
"""

import pytest

from repro.analysis import ExperimentRecord, report_correlation
from repro.core import ImportanceConfig, ImportanceEvaluator

from conftest import TASKS, pretrained, save_bench_records

M_VALUES = [2, 5, 10, 20]

_REPORTS: dict[int, object] = {}


def report_for(m: int):
    if m in _REPORTS:
        return _REPORTS[m]
    task = TASKS["VGG16-C10"]
    model, train, _, _ = pretrained(task)
    evaluator = ImportanceEvaluator(
        model, train, num_classes=task.num_classes,
        config=ImportanceConfig(images_per_class=m, tau_mode="quantile",
                                tau_quantile=0.9, seed=123))
    _REPORTS[m] = evaluator.evaluate(
        [g.conv for g in model.prunable_groups()])
    return _REPORTS[m]


@pytest.mark.parametrize("m", M_VALUES)
def test_m_sensitivity(benchmark, m):
    report = benchmark.pedantic(report_for, args=(m,), rounds=1,
                                iterations=1)
    assert len(report.all_scores()) > 0


def test_m_sensitivity_report(benchmark):
    def build():
        reference = report_for(max(M_VALUES))
        rows = []
        for m in M_VALUES:
            rho = report_correlation(report_for(m), reference)
            rows.append((m, rho))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\nSec. IV M-sensitivity (Spearman rho vs M=20):")
    for m, rho in rows:
        print(f"  M={m:>3}: rho={rho:.3f}")
    save_bench_records("m_sensitivity", [
        ExperimentRecord(experiment="m-sensitivity", setting=f"M={m}",
                         paper=dict(claim_rho=1.0),
                         measured=dict(rho=rho)) for m, rho in rows])

    by_m = dict(rows)
    # The paper's claim: at M=10 the scores are already essentially
    # converged.
    assert by_m[10] > 0.9
    # Convergence is monotone-ish: M=10 agrees with M=20 at least as well
    # as M=2 does.
    assert by_m[10] >= by_m[2] - 0.02
