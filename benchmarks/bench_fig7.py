"""Fig. 7: average importance score per layer, before vs after pruning.

The paper plots, for each network, the layer-wise mean of the filter
importance scores of the original vs the pruned model and observes "for
most layers, there is a considerable growth in importance scores after
pruning".

Shape assertions: on VGG the overall mean rises and a majority of layers
grow (the paper's claim verbatim); on the lightly-pruned ResNet the mean
must not drop materially — with the benchmark's quantile τ the score
scale is relative to the current network, so per-layer drift is expected
there (see EXPERIMENTS.md). Reuses the cached Table I framework runs.
"""

import pytest

from repro.analysis import ExperimentRecord, ascii_bars

from conftest import class_aware_run, save_bench_records

NETWORKS = ["VGG16-C10", "ResNet56-C10"]


@pytest.mark.parametrize("task_name", NETWORKS)
def test_fig7_layer_averages(benchmark, task_name):
    result = benchmark.pedantic(class_aware_run, args=(task_name,),
                                rounds=1, iterations=1)
    before = {k: float(v.mean()) for k, v in result.report_before.items()}
    after = {k: float(v.mean()) for k, v in result.report_after.items()}

    print(f"\n== Fig. 7 — {task_name}: average score per layer ==")
    print("-- before pruning")
    print(ascii_bars(before, width=30, fmt="{:.2f}"))
    print("-- after pruning")
    print(ascii_bars(after, width=30, fmt="{:.2f}"))

    common = [k for k in before if k in after]
    grew = sum(after[k] >= before[k] - 1e-9 for k in common)
    mean_before = sum(before[k] for k in common) / len(common)
    mean_after = sum(after[k] for k in common) / len(common)
    benchmark.extra_info.update({
        "mean_before": round(mean_before, 3),
        "mean_after": round(mean_after, 3),
        "layers_grown": f"{grew}/{len(common)}",
    })
    # Shape: scores rise overall and in most layers on VGG; no material
    # drop on the lightly-pruned ResNet (quantile drift, see docstring).
    if task_name.startswith("VGG"):
        assert mean_after >= mean_before - 1e-9
        assert grew >= len(common) // 2
    else:
        assert mean_after >= 0.9 * mean_before

    save_bench_records(f"fig7_{task_name}", [ExperimentRecord(
        experiment="fig7", setting=task_name,
        measured=dict(mean_before=mean_before, mean_after=mean_after,
                      layers_grown=float(grew), layers=float(len(common))))])
