"""Parallel-scoring and fused/sharded fine-tuning benchmark.

Times the class-parallel importance evaluation against the serial
evaluator (asserting the reports are bit-identical) and one fine-tuning
epoch under the autograd, fused-regularizer and sharded data-parallel
loops, recording the results to ``BENCH_train.json`` at the repo root:

    python benchmarks/bench_train.py              # full suite
    python benchmarks/bench_train.py --smoke      # tiny CI variant
"""

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.parallel.bench import format_table, run_bench, write_bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="logical worker shards for the parallel paths")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per point (best is kept)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny models and few repeats, for CI; "
                             "caps workers at 2")
    parser.add_argument("--grad-transport", choices=("fp32", "int8"),
                        default="fp32",
                        help="gradient wire format for the sharded lane")
    parser.add_argument("--out", default=str(ROOT / "BENCH_train.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = run_bench(workers=args.workers, repeats=args.repeats,
                        smoke=args.smoke, seed=args.seed,
                        transport=args.grad_transport)
    print(format_table(results))
    write_bench(results, args.out)
    print(f"\nresults written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
