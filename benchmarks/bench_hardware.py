"""Background claim (Sec. II-A): structured pruning is hardware-friendly.

"Unstructured pruning can achieve a high pruning rate. However, the weight
matrix after unstructured pruning tends to be irregular, which is not
efficient for digital hardware [...] a lot of zero weight values still
need to be processed on hardware or additional hardware overhead is
required to skip such zero values [26]."

This bench makes the claim quantitative on the systolic-array cost model:

1. class-aware *structured* pruning of VGG16-C10 (cached Table I run,
   re-applied to the live model) → cycle reduction tracks the ratio;
2. *unstructured* magnitude pruning to the **same parameter sparsity**
   → essentially zero cycle reduction on a plain array;
3. the same unstructured model on a zero-skipping array → gains return,
   minus the modelled overhead — exactly the "additional hardware
   overhead" trade-off of [26].
"""

import copy

import numpy as np
import pytest

from repro.analysis import ExperimentRecord, format_table
from repro.baselines import UnstructuredPruner
from repro.core import (ClassAwarePruningFramework, FrameworkConfig)
from repro.flops import (SystolicArrayConfig, cycle_reduction,
                         estimate_cycles, profile_model, pruning_ratio)

from conftest import (IMAGE_SIZE, TASKS, bench_importance, pretrained,
                      save_bench_records)

_STATE: dict[str, object] = {}


def structured_run():
    """Physically prune a copy of the shared VGG with the framework."""
    if "structured" in _STATE:
        return _STATE["structured"]
    task = TASKS["VGG16-C10"]
    base, train, test, _ = pretrained(task)
    _STATE["base"] = (base, train, test)
    model = copy.deepcopy(base)
    framework = ClassAwarePruningFramework(
        model, train, test, num_classes=task.num_classes,
        input_shape=(3, IMAGE_SIZE, IMAGE_SIZE),
        config=FrameworkConfig(
            score_threshold=3.0, max_fraction_per_iteration=0.10,
            finetune_epochs=3, accuracy_drop_tolerance=0.10,
            max_iterations=5, finetune_lr=0.01,
            importance=bench_importance(task)),
        training=task.training())
    result = framework.run()
    _STATE["structured"] = (model, result)
    return _STATE["structured"]


def unstructured_run():
    """Magnitude-prune a copy of the same base to the structured sparsity."""
    if "unstructured" in _STATE:
        return _STATE["unstructured"]
    _, result = structured_run()
    base, train, test = _STATE["base"]
    task = TASKS["VGG16-C10"]
    model = copy.deepcopy(base)
    import dataclasses
    pruner = UnstructuredPruner(
        model, train, test,
        training=dataclasses.replace(task.training(), lr=0.01))
    outcome = pruner.run(sparsity=float(result.pruning_ratio),
                         finetune_epochs=2)
    _STATE["unstructured"] = (model, outcome)
    return _STATE["unstructured"]


def test_hardware_structured(benchmark):
    model, result = benchmark.pedantic(structured_run, rounds=1,
                                       iterations=1)
    base, _, _ = _STATE["base"]
    cfg = SystolicArrayConfig()
    dense = estimate_cycles(base, (3, IMAGE_SIZE, IMAGE_SIZE), cfg)
    pruned = estimate_cycles(model, (3, IMAGE_SIZE, IMAGE_SIZE), cfg)
    reduction = cycle_reduction(dense, pruned)
    benchmark.extra_info.update({
        "pruning_ratio": round(result.pruning_ratio, 4),
        "cycle_reduction": round(reduction, 4),
    })
    # Structured pruning's cycle reduction is real and of the same order
    # as its parameter reduction.
    assert reduction > 0.3 * result.pruning_ratio


def test_hardware_unstructured(benchmark):
    model, outcome = benchmark.pedantic(unstructured_run, rounds=1,
                                        iterations=1)
    base, _, _ = _STATE["base"]
    plain = SystolicArrayConfig(zero_skipping=False)
    dense = estimate_cycles(base, (3, IMAGE_SIZE, IMAGE_SIZE), plain)
    masked = estimate_cycles(model, (3, IMAGE_SIZE, IMAGE_SIZE), plain)
    reduction = cycle_reduction(dense, masked)
    benchmark.extra_info.update({
        "sparsity": round(outcome.achieved_sparsity, 4),
        "cycle_reduction_plain": round(reduction, 4),
    })
    # The paper's claim: on a plain systolic array the zeros still stream.
    assert reduction == pytest.approx(0.0, abs=1e-9)


def test_hardware_report(benchmark):
    def build():
        s_model, s_result = structured_run()
        u_model, u_outcome = unstructured_run()
        base, _, _ = _STATE["base"]
        plain = SystolicArrayConfig(zero_skipping=False)
        skipping = SystolicArrayConfig(zero_skipping=True)
        dense_plain = estimate_cycles(base, (3, IMAGE_SIZE, IMAGE_SIZE), plain)
        rows = []
        records = []
        for label, model, cfg in (
                ("structured (class-aware)", s_model, plain),
                ("unstructured / plain array", u_model, plain),
                ("unstructured / zero-skip array", u_model, skipping)):
            report = estimate_cycles(model, (3, IMAGE_SIZE, IMAGE_SIZE), cfg)
            reduction = cycle_reduction(dense_plain, report)
            params_red = pruning_ratio(
                profile_model(base, (3, IMAGE_SIZE, IMAGE_SIZE)),
                profile_model(model, (3, IMAGE_SIZE, IMAGE_SIZE)))
            rows.append([label, f"{params_red * 100:5.1f}%",
                         f"{report.total_cycles:,}",
                         f"{reduction * 100:5.1f}%"])
            records.append(ExperimentRecord(
                experiment="background-hw", setting=label,
                measured=dict(cycles=float(report.total_cycles),
                              cycle_reduction=reduction)))
        save_bench_records("background_hw", records)
        return rows, records

    rows, _ = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + format_table(
        ["configuration", "param red.", "array cycles", "cycle red."],
        rows, title="Sec. II-A background: systolic-array cost "
                    "(dense baseline = 100%)"))

    structured_red = float(rows[0][3].rstrip("%"))
    unstructured_plain_red = float(rows[1][3].rstrip("%"))
    unstructured_skip_red = float(rows[2][3].rstrip("%"))
    # Shape: structured wins on plain hardware; zero-skipping hardware
    # recovers (some of) the unstructured gains.
    assert structured_red > unstructured_plain_red + 5.0
    assert unstructured_skip_red > unstructured_plain_red
