"""Render all benchmark measurements as markdown tables.

Reads every ``benchmarks/results/*.json`` written by the benches and
prints one markdown table per experiment — paste-ready for
EXPERIMENTS.md.

Usage::

    python benchmarks/update_experiments.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import load_records
from repro.analysis.reporting import records_to_markdown

RESULTS_DIR = Path(__file__).parent / "results"


def main() -> None:
    files = sorted(RESULTS_DIR.glob("*.json"))
    if not files:
        print("no results yet — run `pytest benchmarks/ --benchmark-only` first")
        return
    for path in files:
        records = load_records(path)
        print(f"\n### {path.stem}\n")
        print(records_to_markdown(records))


if __name__ == "__main__":
    main()
