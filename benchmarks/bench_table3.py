"""Table III: cost-function (regulariser) ablation on VGG16-C10.

Paper numbers (full scale), VGG16-CIFAR10 block:

    none      92.91%  ratio 73.6%  FLOPs 58.7%
    L1        93.06%  ratio 91.8%  FLOPs 71.3%
    orth      93.10%  ratio 74.5%  FLOPs 64.7%
    L1+orth   93.16%  ratio 94.8%  FLOPs 71.8%

Shape assertion: training with L1+orth lets the framework prune at least
as much as training with no regularisation at comparable accuracy. (The
paper's ResNet56 block repeats the same machinery; Table I covers the
ResNet56 L1+orth cell.)
"""

import pytest

from repro.analysis import ExperimentRecord, format_table

from conftest import class_aware_run, save_bench_records

PAPER_VGG = {
    "none": dict(pruned=92.91, ratio=73.6, flops=58.7),
    "L1": dict(pruned=93.06, ratio=91.8, flops=71.3),
    "orth": dict(pruned=93.10, ratio=74.5, flops=64.7),
    "L1+orth": dict(pruned=93.16, ratio=94.8, flops=71.8),
}

COEFFS = {
    "none": (0.0, 0.0),
    "L1": (1e-4, 0.0),
    "orth": (0.0, 1e-2),
    "L1+orth": (1e-4, 1e-2),
}


def regulariser_result(label: str):
    lambda1, lambda2 = COEFFS[label]
    return class_aware_run("VGG16-C10", lambda1=lambda1, lambda2=lambda2)


@pytest.mark.parametrize("label", list(PAPER_VGG))
def test_table3_setting(benchmark, label):
    result = benchmark.pedantic(regulariser_result, args=(label,),
                                rounds=1, iterations=1)
    benchmark.extra_info.update({
        "pruned_acc": round(result.final_accuracy, 4),
        "pruning_ratio": round(result.pruning_ratio, 4),
        "flops_reduction": round(result.flops_reduction, 4),
    })
    assert result.accuracy_drop <= 0.08 + 1e-9


def test_table3_report(benchmark):
    def build():
        rows, records = [], []
        for label, paper in PAPER_VGG.items():
            result = regulariser_result(label)
            rows.append([
                label,
                f"{result.final_accuracy * 100:.2f}%",
                f"{-result.accuracy_drop * 100:+.2f}%",
                f"{result.pruning_ratio * 100:.1f}%",
                f"{result.flops_reduction * 100:.1f}%",
            ])
            records.append(ExperimentRecord(
                experiment="table3", setting=f"VGG16-C10/{label}",
                paper=paper,
                measured=dict(pruned=result.final_accuracy * 100,
                              drop=-result.accuracy_drop * 100,
                              ratio=result.pruning_ratio * 100,
                              flops=result.flops_reduction * 100)))
        save_bench_records("table3", records)
        return format_table(
            ["regulariser", "pruned acc", "drop", "prun. ratio",
             "FLOPs red."],
            rows, title="TABLE III (VGG16-C10, benchmark scale)")

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))

    both = regulariser_result("L1+orth")
    none = regulariser_result("none")
    # Shape: the modified cost function buys pruning headroom.
    assert both.pruning_ratio >= none.pruning_ratio - 0.05
