"""Fig. 4: importance-score distribution in a single layer, before vs after.

The paper displays per-layer histograms for VGG16-CIFAR10 (first conv
layer), VGG19-CIFAR100 (third conv layer) and ResNet56-CIFAR10/100 (40th
conv layer). The qualitative content: after pruning, the low-score mass is
gone and the remaining filters sit at higher scores.

Shape assertions: in the displayed layer the below-threshold mass must
not grow, and the mean must not drop materially; for the paper's headline
layer (VGG16 first conv) the strict claims hold — mean rises and the
below-threshold fraction shrinks substantially.

Caveat (documented in EXPERIMENTS.md): with the benchmark's quantile τ,
scores are relative to the *current* network's sensitivity scale; after
pruning+fine-tuning the quantile moves, so small per-layer drifts in
either direction are expected on the lightly-pruned ResNet rows, unlike
the paper's absolute τ at full scale.
"""

import pytest

from repro.analysis import DistributionComparison, ExperimentRecord

from conftest import TASKS, class_aware_run, save_bench_records

# task -> (display index among prunable groups, the paper's label)
LAYERS = {
    "VGG16-C10": (0, "1st conv layer"),
    "VGG19-C100": (2, "3rd conv layer"),
    "ResNet56-C10": (19, "~40th conv layer (block conv1)"),
}


@pytest.mark.parametrize("task_name", list(LAYERS))
def test_fig4_layer_distribution(benchmark, task_name):
    result = benchmark.pedantic(class_aware_run, args=(task_name,),
                                rounds=1, iterations=1)
    index = min(LAYERS[task_name][0], len(result.group_names) - 1)
    path = result.group_names[index]
    before = result.report_before[path]
    after = result.report_after[path]
    num_classes = TASKS[task_name].num_classes
    threshold = 0.3 * num_classes

    comparison = DistributionComparison(
        f"{task_name} {LAYERS[task_name][1]} ({path})", num_classes)
    comparison.add("before pruning", before)
    comparison.add("after pruning", after)
    print("\n" + comparison.render())

    benchmark.extra_info.update({
        "mean_before": round(float(before.mean()), 3),
        "mean_after": round(float(after.mean()), 3),
        "filters_before": len(before),
        "filters_after": len(after),
    })
    # Shape: pruning removed the low-score mass in the displayed layer
    # (small slack for quantile drift, see module docstring).
    frac_below_before = float((before < threshold).mean())
    frac_below_after = float((after < threshold).mean())
    assert after.mean() >= 0.9 * before.mean()
    assert frac_below_after <= frac_below_before + 0.02
    if task_name == "VGG16-C10":
        # The paper's headline layer: strict claims.
        assert after.mean() > before.mean()
        assert frac_below_after < frac_below_before

    save_bench_records(f"fig4_{task_name}", [ExperimentRecord(
        experiment="fig4", setting=f"{task_name}/{path}",
        measured=dict(mean_before=float(before.mean()),
                      mean_after=float(after.mean()),
                      frac_below_before=frac_below_before,
                      frac_below_after=frac_below_after))])
