"""Table I: pruning results of the class-aware method on all four tasks.

Paper numbers (full scale, for shape reference):

    VGG16-CIFAR10     93.90% -> 92.99%   ratio 95.6%   FLOPs red. 77.1%
    VGG19-CIFAR100    73.49% -> 72.56%   ratio 85.4%   FLOPs red. 75.2%
    ResNet56-CIFAR10  93.71% -> 92.89%   ratio 77.9%   FLOPs red. 62.3%
    ResNet56-CIFAR100 72.36% -> 71.49%   ratio 50.0%   FLOPs red. 43.8%

Shape assertions at benchmark scale:
  * accuracy drop stays within the tolerance for every row;
  * every row achieves a nonzero pruning ratio and FLOPs reduction.

Each row's benchmark time is the full prune+fine-tune loop on first run;
runs are cached on disk (see conftest) so figures reuse the same results.
"""

import pytest

from repro.analysis import ExperimentRecord, format_table

from conftest import class_aware_run, save_bench_records

PAPER = {
    "VGG16-C10": dict(orig=93.90, pruned=92.99, ratio=95.6, flops=77.1),
    "VGG19-C100": dict(orig=73.49, pruned=72.56, ratio=85.4, flops=75.2),
    "ResNet56-C10": dict(orig=93.71, pruned=92.89, ratio=77.9, flops=62.3),
    "ResNet56-C100": dict(orig=72.36, pruned=71.49, ratio=50.0, flops=43.8),
}

TOLERANCE = 0.08


def row_result(task_name: str):
    return class_aware_run(task_name, tolerance=TOLERANCE)


@pytest.mark.parametrize("row", list(PAPER))
def test_table1_row(benchmark, row):
    result = benchmark.pedantic(row_result, args=(row,), rounds=1,
                                iterations=1)
    benchmark.extra_info.update({
        "baseline_acc": round(result.baseline_accuracy, 4),
        "pruned_acc": round(result.final_accuracy, 4),
        "pruning_ratio": round(result.pruning_ratio, 4),
        "flops_reduction": round(result.flops_reduction, 4),
    })
    # Shape: a real reduction at bounded accuracy cost.
    assert result.pruning_ratio > 0.05
    assert result.flops_reduction > 0.02
    assert result.accuracy_drop <= TOLERANCE + 1e-9


def test_table1_report(benchmark):
    def build_report():
        rows = []
        records = []
        for name, paper in PAPER.items():
            result = row_result(name)
            rows.append([
                name,
                f"{result.baseline_accuracy * 100:.2f}%",
                f"{result.final_accuracy * 100:.2f}%",
                f"{result.pruning_ratio * 100:.1f}%",
                f"{result.flops_reduction * 100:.1f}%",
                f"{paper['ratio']:.1f}%/{paper['flops']:.1f}%",
            ])
            records.append(ExperimentRecord(
                experiment="table1", setting=name, paper=paper,
                measured=dict(orig=result.baseline_accuracy * 100,
                              pruned=result.final_accuracy * 100,
                              ratio=result.pruning_ratio * 100,
                              flops=result.flops_reduction * 100),
                notes=f"stop={result.stop_reason}"))
        save_bench_records("table1", records)
        return format_table(
            ["task", "orig acc", "pruned acc", "prun. ratio", "FLOPs red.",
             "paper ratio/FLOPs"],
            rows, title="TABLE I (benchmark scale)")

    table = benchmark.pedantic(build_report, rounds=1, iterations=1)
    print("\n" + table)
