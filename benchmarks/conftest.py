"""Shared benchmark infrastructure.

Every bench file regenerates one table or figure of the paper at a
CPU-tractable scale (reduced resolution/width, same architectures and
hyperparameter *structure*). Pretrained weights are cached on disk keyed by
the experiment setup so repeated benchmark runs skip the training phase.

Scale notes: the paper trains full-width nets at 32×32 on an A100 for up
to 130 epochs per iteration; here nets are width-0.25 at 12×12 trained for
tens of epochs. Absolute numbers therefore differ; the *shape* of every
comparison (who wins, what rises, what the combination buys) is asserted
in the benchmark bodies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import pytest

from repro.core import (ImportanceConfig, Trainer, TrainingConfig,
                        evaluate_model)
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import build_model

CACHE_DIR = Path(__file__).parent / "_cache"
RESULTS_DIR = Path(__file__).parent / "results"

IMAGE_SIZE = 12
WIDTH = 0.25


@dataclass(frozen=True)
class BenchTask:
    """One network/dataset pair of the paper's evaluation.

    ``width`` is chosen per architecture so every network carries genuine
    redundancy at benchmark scale: a width-0.25 ResNet56 has stages of
    4/8/16 channels, each filter then being important for nearly all
    classes — nothing to prune, unlike the paper's full-width network.
    """

    name: str            # e.g. "VGG16-C10"
    model_name: str      # registry name
    num_classes: int
    samples_per_class: int
    epochs: int
    seed: int
    width: float = WIDTH

    def datasets(self):
        train = SyntheticImageClassification(SyntheticConfig(
            num_classes=self.num_classes, image_size=IMAGE_SIZE,
            samples_per_class=self.samples_per_class, seed=self.seed))
        test = SyntheticImageClassification(SyntheticConfig(
            num_classes=self.num_classes, image_size=IMAGE_SIZE,
            samples_per_class=max(self.samples_per_class // 3, 5),
            seed=self.seed), train=False)
        return train, test

    def build(self):
        return build_model(self.model_name, num_classes=self.num_classes,
                           image_size=IMAGE_SIZE, width=self.width,
                           seed=self.seed)

    def training(self, lambda1: float = 1e-4, lambda2: float = 1e-2):
        # Step decay late in training stabilises the small-batch runs;
        # the milestones never trigger during the short fine-tuning
        # phases (which restart the scheduler).
        return TrainingConfig(epochs=self.epochs, batch_size=64, lr=0.05,
                              momentum=0.9, weight_decay=5e-4,
                              lambda1=lambda1, lambda2=lambda2,
                              lr_milestones=(int(self.epochs * 0.6),
                                             int(self.epochs * 0.85)),
                              lr_gamma=0.2)


# The paper's four Table I rows, at benchmark scale. CIFAR-100 rows use a
# smaller per-class sample budget to bound runtime.
TASKS: dict[str, BenchTask] = {
    "VGG16-C10": BenchTask("VGG16-C10", "vgg16", 10, 40, 40, 10),
    "VGG19-C100": BenchTask("VGG19-C100", "vgg19", 100, 12, 50, 11),
    "ResNet56-C10": BenchTask("ResNet56-C10", "resnet56", 10, 40, 50, 12,
                              width=0.5),
    "ResNet56-C100": BenchTask("ResNet56-C100", "resnet56", 100, 12, 50, 13,
                               width=0.5),
    # Cheaper stand-ins used by figure benches where four full rows would
    # dominate runtime.
    "VGG11-C10": BenchTask("VGG11-C10", "vgg11", 10, 40, 25, 14),
    "ResNet20-C10": BenchTask("ResNet20-C10", "resnet20", 10, 40, 25, 15),
}


def bench_importance(task: BenchTask) -> ImportanceConfig:
    """Importance settings used by every bench.

    The paper's absolute τ = 1e-50 counts any nonzero Taylor sensitivity;
    that presupposes full-scale networks in which vast numbers of
    activations are *exactly* zero (dead ReLUs, unselected max-pool
    positions). At benchmark scale almost every activation carries some
    gradient — especially in ResNets, whose residual paths and global
    average pooling spread gradient everywhere — so the benches use the
    scale-free quantile mode: an activation counts as important for a
    class when its Taylor score is in the top 10% of the network's scores
    for that class. This restores the score spread of the paper's Fig. 4
    while keeping the criterion, aggregation and pruning rules identical.
    """
    # M = 10 for the 10-class tasks (the paper's setting); M = 6 for the
    # 100-class tasks to bound the 100-backward-passes-per-iteration cost
    # (bench_m_sensitivity shows scores are already converged well below
    # M = 10).
    images = 10 if task.num_classes <= 10 else 6
    return ImportanceConfig(
        images_per_class=min(images, task.samples_per_class),
        tau_mode="quantile", tau_quantile=0.9)


def pretrained(task: BenchTask, lambda1: float = 1e-4,
               lambda2: float = 1e-2):
    """Train (or load from cache) the task's model with the modified loss.

    Returns ``(model, train_ds, test_ds, baseline_accuracy)``.
    """
    CACHE_DIR.mkdir(exist_ok=True)
    key = (f"{task.name}_l1{lambda1:g}_orth{lambda2:g}_s{task.seed}"
           f"_w{task.width}_i{IMAGE_SIZE}_e{task.epochs}"
           f"_n{task.samples_per_class}_v2")
    path = CACHE_DIR / f"{key}.npz"
    model = task.build()
    train, test = task.datasets()
    if path.exists():
        state = dict(np.load(path))
        model.load_state_dict(state)
    else:
        trainer = Trainer(model, train, test,
                          task.training(lambda1=lambda1, lambda2=lambda2))
        trainer.train()
        np.savez(path, **model.state_dict())
    _, acc = evaluate_model(model, test)
    return model, train, test, acc


@dataclass
class FrameworkRunSummary:
    """Serialisable summary of one class-aware framework run.

    Framework runs are the expensive unit of this benchmark suite; several
    benches need the *same* run (Table I's rows feed Figs. 4 and 7), so
    runs are cached to disk keyed by their full configuration. Re-running
    ``pytest benchmarks/`` with warm caches regenerates every table and
    figure in seconds.
    """

    baseline_accuracy: float
    final_accuracy: float
    pruning_ratio: float
    flops_reduction: float
    stop_reason: str
    group_names: list = field(default_factory=list)
    report_before: dict = field(default_factory=dict)
    report_after: dict = field(default_factory=dict)
    iterations: list = field(default_factory=list)

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.final_accuracy


FINETUNE_LR = 0.01   # the paper's initial rate; see FrameworkConfig.finetune_lr


def class_aware_run(task_name: str, *, strategy: str = "percentage+threshold",
                    threshold: float | None = None, max_fraction: float = 0.10,
                    finetune_epochs: int = 5, tolerance: float = 0.08,
                    max_iterations: int = 5, lambda1: float = 1e-4,
                    lambda2: float = 1e-2) -> FrameworkRunSummary:
    """Run (or load from cache) the class-aware framework on a bench task."""
    from repro.core import ClassAwarePruningFramework, FrameworkConfig

    task = TASKS[task_name]
    threshold = threshold if threshold is not None else 0.3 * task.num_classes
    CACHE_DIR.mkdir(exist_ok=True)
    key = (f"run_{task_name}_{strategy}_t{threshold:g}_f{max_fraction:g}"
           f"_e{finetune_epochs}_tol{tolerance:g}_i{max_iterations}"
           f"_l1{lambda1:g}_l2{lambda2:g}_w{task.width}_ep{task.epochs}"
           f"_ftlr{FINETUNE_LR:g}_v3")
    path = CACHE_DIR / f"{key}.json"
    if path.exists():
        with open(path) as fh:
            payload = json.load(fh)
        payload["report_before"] = {k: np.asarray(v) for k, v
                                    in payload["report_before"].items()}
        payload["report_after"] = {k: np.asarray(v) for k, v
                                   in payload["report_after"].items()}
        return FrameworkRunSummary(**payload)

    model, train, test, _ = pretrained(task, lambda1=lambda1, lambda2=lambda2)
    framework = ClassAwarePruningFramework(
        model, train, test, num_classes=task.num_classes,
        input_shape=(3, IMAGE_SIZE, IMAGE_SIZE),
        config=FrameworkConfig(
            score_threshold=threshold,
            max_fraction_per_iteration=max_fraction,
            strategy=strategy,
            finetune_epochs=finetune_epochs,
            accuracy_drop_tolerance=tolerance,
            max_iterations=max_iterations,
            finetune_lr=FINETUNE_LR,
            importance=bench_importance(task)),
        training=task.training(lambda1=lambda1, lambda2=lambda2))
    result = framework.run()
    summary = FrameworkRunSummary(
        baseline_accuracy=result.baseline_accuracy,
        final_accuracy=result.final_accuracy,
        pruning_ratio=result.pruning_ratio,
        flops_reduction=result.flops_reduction,
        stop_reason=result.stop_reason,
        group_names=[g.name for g in result.model.prunable_groups()],
        report_before={k: v for k, v in result.report_before.total.items()},
        report_after={k: v for k, v in result.report_after.total.items()},
        iterations=[dict(iteration=it.iteration, removed=it.num_removed,
                         acc_after_prune=it.accuracy_after_prune,
                         acc_after_finetune=it.accuracy_after_finetune,
                         params=it.params, flops=it.flops)
                    for it in result.iterations],
    )
    with open(path, "w") as fh:
        json.dump({
            "baseline_accuracy": summary.baseline_accuracy,
            "final_accuracy": summary.final_accuracy,
            "pruning_ratio": summary.pruning_ratio,
            "flops_reduction": summary.flops_reduction,
            "stop_reason": summary.stop_reason,
            "group_names": summary.group_names,
            "report_before": {k: v.tolist() for k, v
                              in summary.report_before.items()},
            "report_after": {k: v.tolist() for k, v
                             in summary.report_after.items()},
            "iterations": summary.iterations,
        }, fh)
    return summary


def save_bench_records(name: str, records) -> None:
    """Persist a bench's measurements under benchmarks/results/."""
    from repro.analysis import save_records
    RESULTS_DIR.mkdir(exist_ok=True)
    save_records(records, RESULTS_DIR / f"{name}.json")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
