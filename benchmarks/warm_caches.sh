#!/bin/bash
# Warm all benchmark caches sequentially (safe to interrupt and re-run:
# pretrained models and framework runs are cached on disk, so each
# invocation only computes what is still missing).
set -x
cd "$(dirname "$0")/.."
for f in bench_table1 bench_table2 bench_table3 bench_fig4 bench_fig7 \
         bench_fig8 bench_m_sensitivity bench_specialize bench_tradeoff \
         bench_hardware bench_distill bench_sensitivity bench_fig6 bench_kernels; do
    python -m pytest "benchmarks/${f}.py" --benchmark-only -q -s \
        2>&1 | tail -4
done
