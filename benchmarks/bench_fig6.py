"""Fig. 6: Top-1 accuracy / pruning ratio / FLOPs reduction vs baselines.

The paper compares its method against L1 [23], SSS [27], HRank [19],
TPP [18], OrthConv [31] and DepGraph full-/no-grouping [13] on pretrained
models, reporting three bar panels. Here every method — plus Taylor [25],
APoZ [24] and a random control — prunes an identical copy of the same
pretrained model to a matched compression target under the same fine-tune
budget.

Shape assertions:
  * the class-aware method recovers accuracy within its tolerance;
  * it ranks in the upper half of all methods on post-pruning accuracy
    (the paper shows it highest in most cases);
  * it beats the random control.
"""

import copy

import pytest

from repro.analysis import ExperimentRecord, MethodComparison
from repro.baselines import BaselineConfig, BaselineRunResult, run_method

from conftest import (IMAGE_SIZE, TASKS, class_aware_run, pretrained,
                      save_bench_records)

METHODS = ["l1", "sss", "hrank", "tpp", "orthconv", "depgraph-full",
           "depgraph-none", "taylor", "apoz", "random"]

TASK_NAME = "VGG16-C10"
_STATE: dict[str, object] = {}


def ours_run() -> BaselineRunResult:
    if "ours" in _STATE:
        return _STATE["ours"]
    summary = class_aware_run(TASK_NAME)  # cached: same run as Table I
    _STATE["ours"] = BaselineRunResult(
        method="class-aware",
        baseline_accuracy=summary.baseline_accuracy,
        final_accuracy=summary.final_accuracy,
        pruning_ratio=summary.pruning_ratio,
        flops_reduction=summary.flops_reduction,
        iterations=len(summary.iterations))
    return _STATE["ours"]


def method_run(name: str) -> BaselineRunResult:
    if name in _STATE:
        return _STATE[name]
    ours = ours_run()
    task = TASKS[TASK_NAME]
    if "base" not in _STATE:
        _STATE["base"] = pretrained(task)
    base, train, test, _ = _STATE["base"]
    config = BaselineConfig(
        target_ratio=max(ours.pruning_ratio * 0.9, 0.15),
        fraction_per_iteration=0.12, finetune_epochs=3, max_iterations=6,
        num_images=64, finetune_lr=0.01)
    model = copy.deepcopy(base)
    _STATE[name] = run_method(name, model, train, test,
                              (3, IMAGE_SIZE, IMAGE_SIZE), config,
                              task.training())
    return _STATE[name]


def test_fig6_class_aware(benchmark):
    ours = benchmark.pedantic(ours_run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "final_acc": round(ours.final_accuracy, 4),
        "pruning_ratio": round(ours.pruning_ratio, 4),
    })
    assert ours.accuracy_drop <= 0.08 + 1e-9


@pytest.mark.parametrize("name", METHODS)
def test_fig6_baseline(benchmark, name):
    result = benchmark.pedantic(method_run, args=(name,), rounds=1,
                                iterations=1)
    benchmark.extra_info.update({
        "final_acc": round(result.final_accuracy, 4),
        "pruning_ratio": round(result.pruning_ratio, 4),
        "flops_reduction": round(result.flops_reduction, 4),
    })
    assert result.pruning_ratio > 0.0


def test_fig6_report(benchmark):
    def build():
        ours = ours_run()
        if "base" not in _STATE:
            _STATE["base"] = pretrained(TASKS[TASK_NAME])
        _, _, _, original_acc = _STATE["base"]
        comparison = MethodComparison(TASK_NAME,
                                      original_accuracy=original_acc)
        comparison.add(ours)
        records = []
        for name in METHODS:
            result = method_run(name)
            comparison.add(result)
            records.append(ExperimentRecord(
                experiment="fig6", setting=f"{TASK_NAME}/{name}",
                measured=dict(acc=result.final_accuracy * 100,
                              ratio=result.pruning_ratio * 100,
                              flops=result.flops_reduction * 100)))
        records.append(ExperimentRecord(
            experiment="fig6", setting=f"{TASK_NAME}/class-aware",
            measured=dict(acc=ours.final_accuracy * 100,
                          ratio=ours.pruning_ratio * 100,
                          flops=ours.flops_reduction * 100)))
        save_bench_records("fig6", records)
        return comparison

    comparison = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + comparison.table())
    print("\n" + comparison.panels())

    # Shape: upper half on accuracy, above random.
    rank = comparison.rank_of("class-aware")
    total = len(comparison.results)
    assert rank <= (total + 1) // 2, (
        f"class-aware ranked {rank}/{total} on accuracy")
    random_acc = next(r.final_accuracy for r in comparison.results
                      if r.method == "random")
    ours = ours_run()
    assert ours.final_accuracy >= random_acc - 0.02
