"""Sweep the class-count threshold and map the accuracy/compression frontier.

The paper reports one operating point per network (threshold = 30% of the
class count). The threshold is the method's natural knob: raising it
prunes filters that are important for *more* classes. This example sweeps
it, prints the resulting frontier and its Pareto-optimal subset, and shows
the knob is monotone.

Usage::

    python examples/tradeoff_curve.py
"""

from repro.analysis import pareto_front, threshold_sweep
from repro.core import (FrameworkConfig, ImportanceConfig, Trainer,
                        TrainingConfig)
from repro.data import make_cifar_like
from repro.models import vgg11


def main() -> None:
    train, test = make_cifar_like(num_classes=10, image_size=12,
                                  samples_per_class=50, seed=6)
    model = vgg11(num_classes=10, image_size=12, width=0.25, seed=6)
    training = TrainingConfig(epochs=30, batch_size=64, lr=0.05,
                              momentum=0.9, weight_decay=5e-4,
                              lambda1=1e-4, lambda2=1e-2)
    print("== Training the base model ==")
    Trainer(model, train, test, training).train()

    print("\n== Threshold sweep ==")
    points = threshold_sweep(
        model, train, test, num_classes=10, input_shape=(3, 12, 12),
        thresholds=[1.0, 2.0, 3.0, 5.0, 7.0],
        base_config=FrameworkConfig(
            max_fraction_per_iteration=0.12, finetune_epochs=3,
            finetune_lr=0.01, accuracy_drop_tolerance=0.10,
            max_iterations=5,
            importance=ImportanceConfig(images_per_class=8,
                                        tau_mode="quantile",
                                        tau_quantile=0.9)),
        training=training, log=True)

    print("\nthreshold  accuracy  prun.ratio  FLOPs red.  stop")
    for p in points:
        print(f"{p.threshold:9.1f}  {p.accuracy * 100:7.2f}%  "
              f"{p.pruning_ratio * 100:9.1f}%  {p.flops_reduction * 100:9.1f}%  "
              f"{p.stop_reason}")

    print("\nPareto-optimal points (accuracy vs compression):")
    for p in pareto_front(points):
        print(f"  thr={p.threshold:.1f}: acc={p.accuracy * 100:.2f}% "
              f"ratio={p.pruning_ratio * 100:.1f}%")


if __name__ == "__main__":
    main()
