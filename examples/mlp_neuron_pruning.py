"""The paper's Fig. 1 story: class-aware pruning of MLP *neurons*.

The motivating example of the paper shows a fully connected network where
some neurons matter for several classes and others for only one; the
latter can be pruned and the network retrained. This example runs exactly
that: it trains an MLP, prints how many neurons are important for how many
classes, prunes the few-class neurons, and shows the per-class importance
matrix before and after.

Usage::

    python examples/mlp_neuron_pruning.py
"""

import numpy as np

from repro.analysis import ascii_histogram, score_histogram
from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, ImportanceEvaluator,
                        TrainingConfig)
from repro.data import make_cifar_like
from repro.models import MLP


def describe(report, num_classes: int, title: str) -> None:
    scores = report.all_scores()
    print(f"\n-- {title}: {len(scores)} neurons --")
    counts, edges = score_histogram(scores, num_classes)
    print(ascii_histogram(counts, edges, width=30))
    for k in range(num_classes + 1):
        n = int(((scores >= k) & (scores < k + 1)).sum())
        if n and k <= 2:
            print(f"   {n} neurons important for ~{k} classes")


def main() -> None:
    num_classes = 5
    train, test = make_cifar_like(num_classes=num_classes, image_size=8,
                                  samples_per_class=60, seed=4)
    model = MLP(3 * 8 * 8, [64, 32, 16], num_classes, seed=4)
    print(f"4-layer MLP: {model.num_parameters():,} parameters, "
          f"hidden widths 64/32/16")

    framework = ClassAwarePruningFramework(
        model, train, test, num_classes=num_classes, input_shape=(3, 8, 8),
        config=FrameworkConfig(
            score_threshold=2.0, max_fraction_per_iteration=0.15,
            finetune_epochs=4, finetune_lr=0.01, accuracy_drop_tolerance=0.05,
            max_iterations=5,
            importance=ImportanceConfig(images_per_class=10)),
        training=TrainingConfig(epochs=25, batch_size=64, lr=0.05,
                                momentum=0.9, weight_decay=5e-4,
                                lambda1=1e-4, lambda2=1e-2))

    print("\n== Training ==")
    framework.pretrain(log=True)
    result = framework.run(log=True)

    describe(result.report_before, num_classes, "before pruning (Fig. 1 left)")
    describe(result.report_after, num_classes, "after pruning (Fig. 1 right)")

    print("\n== Per-class importance of the first hidden layer (after) ==")
    group = result.model.prunable_groups()[0]
    matrix = result.report_after.per_class[group.conv]
    header = "neuron " + " ".join(f"c{c}" for c in range(num_classes))
    print(header)
    for i, row in enumerate(matrix[:10]):
        print(f"{i:>6} " + " ".join(f"{v:4.1f}" for v in row))

    print("\n" + result.summary_row("MLP-Synthetic5"))


if __name__ == "__main__":
    main()
