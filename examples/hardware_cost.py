"""Hardware view: why the paper insists on *structured* pruning.

Reproduces the Sec. II-A background argument on the systolic-array cost
model: prune one trained network two ways to the same parameter budget —

* structured, with the class-aware framework (whole filters removed), and
* unstructured, with magnitude masking (individual weights zeroed) —

then estimate execution cycles on a 16x16 weight-stationary systolic
array, with and without zero-skipping hardware.

Usage::

    python examples/hardware_cost.py
"""

import copy

from repro.baselines import UnstructuredPruner, sparsity_report
from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, Trainer, TrainingConfig)
from repro.data import make_cifar_like
from repro.flops import (SystolicArrayConfig, cycle_reduction,
                         estimate_cycles, profile_model, pruning_ratio)
from repro.models import vgg11


def main() -> None:
    train, test = make_cifar_like(num_classes=10, image_size=12,
                                  samples_per_class=50, seed=5)
    base = vgg11(num_classes=10, image_size=12, width=0.25, seed=5)
    training = TrainingConfig(epochs=30, batch_size=64, lr=0.05,
                              momentum=0.9, weight_decay=5e-4,
                              lambda1=1e-4, lambda2=1e-2)
    print("== Training the base model ==")
    Trainer(base, train, test, training).train()

    print("\n== Structured: class-aware filter pruning ==")
    structured = copy.deepcopy(base)
    framework = ClassAwarePruningFramework(
        structured, train, test, num_classes=10, input_shape=(3, 12, 12),
        config=FrameworkConfig(score_threshold=3.0,
                               max_fraction_per_iteration=0.12,
                               finetune_epochs=3, finetune_lr=0.01,
                               accuracy_drop_tolerance=0.08,
                               max_iterations=5,
                               importance=ImportanceConfig(
                                   images_per_class=8, tau_mode="quantile",
                                   tau_quantile=0.9)),
        training=training)
    result = framework.run()
    print(result.summary_row("structured"))

    print("\n== Unstructured: magnitude masking to the same sparsity ==")
    unstructured = copy.deepcopy(base)
    pruner = UnstructuredPruner(unstructured, train, test, training=training)
    outcome = pruner.run(sparsity=float(result.pruning_ratio),
                         finetune_epochs=3)
    print(f"unstructured: sparsity {outcome.achieved_sparsity * 100:.1f}% "
          f"accuracy {outcome.final_accuracy * 100:.2f}%")

    print("\n== Systolic-array cost (16x16 PEs) ==")
    plain = SystolicArrayConfig(zero_skipping=False)
    skipping = SystolicArrayConfig(zero_skipping=True, skip_overhead=0.15)
    dense = estimate_cycles(base, (3, 12, 12), plain)
    print(f"{'dense baseline':<36}{dense.total_cycles:>12,} cycles")
    for label, model, cfg in (
            ("structured / plain array", structured, plain),
            ("unstructured / plain array", unstructured, plain),
            ("unstructured / zero-skipping array", unstructured, skipping)):
        report = estimate_cycles(model, (3, 12, 12), cfg)
        red = cycle_reduction(dense, report)
        print(f"{label:<36}{report.total_cycles:>12,} cycles "
              f"({red * 100:+5.1f}% vs dense)")

    print("\nThe paper's point: the unstructured model removes as many "
          "weights but saves (almost) no cycles unless the array pays for "
          "zero-skipping hardware; the structurally pruned network is "
          "smaller for free.")


if __name__ == "__main__":
    main()
