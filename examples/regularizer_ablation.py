"""Fig. 8 / Table III: how the modified cost shapes the score distribution.

Trains four copies of the same VGG — no regularisation, L1 only, orth
only, and L1+orth — then prints each model's filter importance-score
histogram and polarisation index, followed by Table III-style pruning
results under identical pruning settings.

The paper's claim: L1 produces more zero-score filters, orth produces more
max-score filters, and the combination yields the most polarised
distribution, which in turn prunes best.

Usage::

    python examples/regularizer_ablation.py
"""

from repro.analysis import DistributionComparison, polarization_index
from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, ImportanceEvaluator, Trainer,
                        TrainingConfig)
from repro.data import make_cifar_like
from repro.models import vgg11

SETTINGS = [
    ("none", 0.0, 0.0),
    ("L1", 1e-4, 0.0),
    ("orth", 0.0, 1e-2),
    ("L1+orth", 1e-4, 1e-2),
]


def main() -> None:
    train, test = make_cifar_like(num_classes=10, image_size=12,
                                  samples_per_class=50, seed=3)
    comparison = DistributionComparison("all conv layers", num_classes=10)
    pruning_rows = []

    for label, lambda1, lambda2 in SETTINGS:
        print(f"\n== Training with {label} regularisation ==")
        model = vgg11(num_classes=10, image_size=12, width=0.25, seed=3)
        training = TrainingConfig(epochs=30, batch_size=64, lr=0.05,
                                  momentum=0.9, weight_decay=5e-4,
                                  lambda1=lambda1, lambda2=lambda2)
        Trainer(model, train, test, training).train()

        evaluator = ImportanceEvaluator(
            model, train, num_classes=10,
            config=ImportanceConfig(images_per_class=8))
        report = evaluator.evaluate(
            [g.conv for g in model.prunable_groups()])
        scores = report.all_scores()
        comparison.add(label, scores)
        print(f"polarisation index: {polarization_index(scores, 10):.3f}")

        framework = ClassAwarePruningFramework(
            model, train, test, num_classes=10, input_shape=(3, 12, 12),
            config=FrameworkConfig(score_threshold=3.0,
                                   max_fraction_per_iteration=0.10,
                                   finetune_epochs=3, finetune_lr=0.01,
                               accuracy_drop_tolerance=0.08,
                                   max_iterations=4,
                                   importance=ImportanceConfig(images_per_class=8)),
            training=training)
        result = framework.run()
        pruning_rows.append((label, result))

    print("\n== Fig. 8: score distributions per regulariser ==")
    print(comparison.render())

    print("\n== Table III shape: pruning results per regulariser ==")
    for label, result in pruning_rows:
        print(result.summary_row(label))


if __name__ == "__main__":
    main()
