"""ResNet pruning under the shortcut constraint + strategy ablation.

Reproduces the Table II experiment shape: on a CIFAR-style ResNet, compare
the three pruning strategies — percentage only, threshold only, and the
paper's percentage+threshold combination — under identical budgets.

The paper's ResNet rule is visible in the metadata: only the *first*
convolution of each residual block is prunable, so shortcut additions stay
shape-consistent without touching projection layers.

The winning pruned model is then compiled with ``repro.infer`` to show the
deployment-side payoff: eager vs compiled inference latency.

Usage::

    python examples/resnet_pruning.py
"""

import copy
import time

import numpy as np

from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, Trainer, TrainingConfig)
from repro.data import make_cifar_like
from repro.infer import compile_model
from repro.models import resnet20
from repro.tensor import Tensor, inference_mode


def main() -> None:
    train, test = make_cifar_like(num_classes=10, image_size=12,
                                  samples_per_class=50, seed=1)

    base = resnet20(num_classes=10, width=0.5, seed=1)
    groups = base.prunable_groups()
    print(f"ResNet-20 (width 0.5): {base.num_parameters():,} parameters, "
          f"{len(groups)} prunable groups (first conv of each block)")

    training = TrainingConfig(epochs=30, batch_size=64, lr=0.05,
                              momentum=0.9, weight_decay=5e-4,
                              lambda1=1e-4, lambda2=1e-2)
    print("\n== Training the base model ==")
    Trainer(base, train, test, training).train(log=True)

    print("\n== Strategy ablation (Table II shape) ==")
    rows = []
    for strategy in ("percentage", "threshold", "percentage+threshold"):
        model = copy.deepcopy(base)
        framework = ClassAwarePruningFramework(
            model, train, test, num_classes=10, input_shape=(3, 12, 12),
            config=FrameworkConfig(
                score_threshold=3.0, max_fraction_per_iteration=0.10,
                strategy=strategy, finetune_epochs=4, finetune_lr=0.01,
                accuracy_drop_tolerance=0.05, max_iterations=5,
                importance=ImportanceConfig(images_per_class=8)),
            training=training)
        result = framework.run()
        rows.append((strategy, result))
        print(result.summary_row(strategy))

    print("\nThe paper's finding: the combination prunes at least as much "
          "as either rule alone at comparable accuracy.")
    for strategy, result in rows:
        print(f"  {strategy:<24} drop={result.accuracy_drop * 100:+.2f}% "
              f"ratio={result.pruning_ratio * 100:.1f}%")

    print("\n== Compiled inference on the combined-strategy model ==")
    best = next(r for s, r in rows if s == "percentage+threshold")
    report_inference_speed(best.model, image_size=12, batch=32)


def report_inference_speed(model, image_size: int, batch: int,
                           repeats: int = 20) -> None:
    """Time eager vs compiled forward passes on the pruned model."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, 3, image_size, image_size)).astype(np.float32)
    model.eval()
    engine = compile_model(model, x)

    def timed(fn):
        fn()                                  # warmup
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return float(np.median(samples)) * 1e3

    def eager():
        with inference_mode():
            model(Tensor(x))

    eager_ms = timed(eager)
    compiled_ms = timed(lambda: engine.run(x))
    print(f"batch {batch}: eager {eager_ms:.2f} ms, "
          f"compiled {compiled_ms:.2f} ms "
          f"({eager_ms / compiled_ms:.2f}x; "
          f"{engine.optimization.summary()})")


if __name__ == "__main__":
    main()
