"""Quickstart: class-aware pruning of a small VGG in ~a minute on CPU.

Runs the full pipeline of the paper (DATE 2024) end to end:

1. train a VGG-11 on the synthetic CIFAR-10 stand-in with the modified
   cost function (cross entropy + L1 + orthogonality, Eq. 1);
2. evaluate per-class filter importance (Eq. 3–7);
3. iteratively prune + fine-tune (Fig. 5);
4. report accuracy, pruning ratio and FLOPs reduction (Table I columns);
5. compile the pruned model with ``repro.infer`` and compare eager vs
   compiled inference latency.

Usage::

    python examples/quickstart.py
"""

import time

import numpy as np

from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, TrainingConfig)
from repro.data import make_cifar_like
from repro.infer import compile_model
from repro.models import vgg11
from repro.tensor import Tensor, inference_mode


def main() -> None:
    # A 10-class task standing in for CIFAR-10 (see DESIGN.md for why the
    # substitution preserves the pruning behaviour).
    train, test = make_cifar_like(num_classes=10, image_size=12,
                                  samples_per_class=60, seed=0)

    model = vgg11(num_classes=10, image_size=12, width=0.25, seed=0)
    print(f"VGG-11 (width 0.25): {model.num_parameters():,} parameters")

    framework = ClassAwarePruningFramework(
        model, train, test, num_classes=10, input_shape=(3, 12, 12),
        config=FrameworkConfig(
            score_threshold=3.0,                # paper: 3 for 10 classes
            max_fraction_per_iteration=0.10,    # paper: <= 10% per iter
            finetune_epochs=5, finetune_lr=0.01,
            accuracy_drop_tolerance=0.05,
            max_iterations=6,
            importance=ImportanceConfig(images_per_class=10,  # paper: M=10
                                        tau=1e-50),            # paper's τ
        ),
        training=TrainingConfig(epochs=30, batch_size=64, lr=0.05,
                                momentum=0.9, weight_decay=5e-4,
                                lambda1=1e-4, lambda2=1e-2),
    )

    print("\n== Phase 1: training with the modified cost function ==")
    framework.pretrain(log=True)

    print("\n== Phase 2: iterative class-aware pruning ==")
    result = framework.run(log=True)

    print("\n== Result (Table I format) ==")
    print(result.summary_row("VGG11-Synthetic10"))
    print(f"stopped because: {result.stop_reason}")
    print(f"importance score mean before {result.report_before.all_scores().mean():.2f}"
          f" -> after {result.report_after.all_scores().mean():.2f} (Fig. 7 effect)")

    print("\n== Phase 3: compiled inference on the pruned model ==")
    report_inference_speed(model, image_size=12, batch=32)


def report_inference_speed(model, image_size: int, batch: int,
                           repeats: int = 20) -> None:
    """Time eager vs compiled forward passes on the (pruned) model."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, 3, image_size, image_size)).astype(np.float32)
    model.eval()
    engine = compile_model(model, x)

    def timed(fn):
        fn()                                  # warmup
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return float(np.median(samples)) * 1e3

    def eager():
        with inference_mode():
            model(Tensor(x))

    eager_ms = timed(eager)
    compiled_ms = timed(lambda: engine.run(x))
    print(f"batch {batch}: eager {eager_ms:.2f} ms, "
          f"compiled {compiled_ms:.2f} ms "
          f"({eager_ms / compiled_ms:.2f}x; "
          f"{engine.optimization.summary()})")


if __name__ == "__main__":
    main()
