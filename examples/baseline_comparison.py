"""Fig. 6-style comparison: class-aware pruning vs the baseline criteria.

Trains one model, then prunes independent copies of it with every method —
the class-aware framework plus L1 [23], SSS [27], HRank [19], TPP [18],
OrthConv [31], DepGraph full/no grouping [13], Taylor [25], APoZ [24] and a
random control — all under the same per-iteration and fine-tuning budgets,
and prints the three Fig. 6 panels (accuracy / pruning ratio / FLOPs
reduction) as ASCII bars.

Usage::

    python examples/baseline_comparison.py
"""

import copy

from repro.analysis import MethodComparison
from repro.baselines import BaselineConfig, BaselineRunResult, run_method
from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, Trainer, TrainingConfig,
                        evaluate_model)
from repro.data import make_cifar_like
from repro.models import vgg11

METHODS = ["l1", "sss", "hrank", "tpp", "orthconv", "depgraph-full",
           "depgraph-none", "taylor", "apoz", "random"]


def class_aware_result(base, train, test, training) -> BaselineRunResult:
    """Run the paper's framework and adapt its result to the Fig. 6 row."""
    model = copy.deepcopy(base)
    framework = ClassAwarePruningFramework(
        model, train, test, num_classes=10, input_shape=(3, 12, 12),
        config=FrameworkConfig(score_threshold=3.0,
                               max_fraction_per_iteration=0.12,
                               finetune_epochs=3, finetune_lr=0.01,
                               accuracy_drop_tolerance=0.08,
                               max_iterations=5,
                               importance=ImportanceConfig(images_per_class=8)),
        training=training)
    result = framework.run()
    return BaselineRunResult(
        method="class-aware",
        baseline_accuracy=result.baseline_accuracy,
        final_accuracy=result.final_accuracy,
        pruning_ratio=result.pruning_ratio,
        flops_reduction=result.flops_reduction,
        iterations=len(result.iterations))


def main() -> None:
    train, test = make_cifar_like(num_classes=10, image_size=12,
                                  samples_per_class=50, seed=2)
    base = vgg11(num_classes=10, image_size=12, width=0.25, seed=2)
    training = TrainingConfig(epochs=30, batch_size=64, lr=0.05,
                              momentum=0.9, weight_decay=5e-4,
                              lambda1=1e-4, lambda2=1e-2)
    print("== Training the shared base model ==")
    Trainer(base, train, test, training).train()
    _, original_acc = evaluate_model(base, test)
    print(f"original accuracy: {original_acc * 100:.2f}%")

    comparison = MethodComparison("VGG11-Synthetic10",
                                  original_accuracy=original_acc)
    print("\n== Class-aware (ours) ==")
    ours = class_aware_result(base, train, test, training)
    comparison.add(ours)
    print(ours.row())

    baseline_cfg = BaselineConfig(
        target_ratio=max(ours.pruning_ratio, 0.2),  # matched compression
        fraction_per_iteration=0.12, finetune_epochs=3, finetune_lr=0.01, max_iterations=8,
        num_images=64)
    for name in METHODS:
        model = copy.deepcopy(base)
        result = run_method(name, model, train, test, (3, 12, 12),
                            baseline_cfg, training)
        comparison.add(result)
        print(result.row())

    print("\n" + comparison.table())
    print("\n" + comparison.panels())
    print(f"\nhighest post-pruning accuracy: "
          f"{comparison.best_accuracy_method()}")


if __name__ == "__main__":
    main()
